//! The nesC concurrency analysis: computes the **non-atomic variable
//! report** the paper's toolchain feeds from the nesC compiler into CCured
//! (§2.2), with the two refinements §2.1 describes for cXprop's own
//! detector: it is conservative about pointers (an address-taken global
//! with cross-context pointer accesses is treated as racy) and it
//! deliberately **suppresses `norace`** annotations, as the Safe TinyOS
//! toolchain does.
//!
//! The model is nesC's two-level concurrency: *synchronous* code (tasks
//! and `main`) is non-preemptive; *asynchronous* code (interrupt handlers
//! and everything they call) can preempt it. A global is a race candidate
//! when it is reachable from asynchronous context and at least one
//! synchronous access is not protected by an `atomic` section.

use std::collections::HashSet;

use tcil::ir::*;
use tcil::visit;

/// The non-atomic variable report.
#[derive(Debug, Clone, Default)]
pub struct ConcurrencyReport {
    /// Names of globals flagged as race candidates.
    pub racy: Vec<String>,
    /// Globals declared `norace` whose annotation was suppressed (they are
    /// still checked; the paper's toolchain does the same).
    pub norace_suppressed: Vec<String>,
    /// Functions reachable from interrupt handlers (async context).
    pub async_functions: Vec<String>,
    /// Number of atomic sections in the program.
    pub atomic_sections: usize,
}

#[derive(Default, Clone)]
struct Access {
    async_any: bool,
    sync_unprotected: bool,
    addr_taken: bool,
}

/// Runs the analysis, sets [`Global::racy`] flags in `program`, and
/// returns the report.
pub fn analyze(program: &mut Program) -> ConcurrencyReport {
    let n_funcs = program.functions.len();
    // Call graph.
    let mut callees: Vec<Vec<FuncId>> = vec![Vec::new(); n_funcs];
    for (i, f) in program.functions.iter().enumerate() {
        visit::walk_stmts(&f.body, &mut |s| {
            if let Stmt::Call { func, .. } = s {
                callees[i].push(*func);
            }
        });
    }
    // Async context: reachable from interrupt handlers.
    let mut async_ctx = vec![false; n_funcs];
    let mut work: Vec<FuncId> = program
        .functions
        .iter()
        .enumerate()
        .filter(|(_, f)| f.interrupt.is_some())
        .map(|(i, _)| FuncId(i as u32))
        .collect();
    while let Some(f) = work.pop() {
        if std::mem::replace(&mut async_ctx[f.0 as usize], true) {
            continue;
        }
        work.extend(callees[f.0 as usize].iter().copied());
    }
    // Sync context: reachable from main and tasks.
    let mut sync_ctx = vec![false; n_funcs];
    let mut work: Vec<FuncId> = program
        .entry
        .into_iter()
        .chain(program.tasks.iter().copied())
        .collect();
    while let Some(f) = work.pop() {
        if std::mem::replace(&mut sync_ctx[f.0 as usize], true) {
            continue;
        }
        work.extend(callees[f.0 as usize].iter().copied());
    }

    let mut acc: Vec<Access> = vec![Access::default(); program.globals.len()];
    let mut deref_async = false;
    let mut deref_sync_unprotected = false;
    let mut atomic_sections = 0usize;

    for (i, f) in program.functions.iter().enumerate() {
        let is_async = async_ctx[i];
        let is_sync = sync_ctx[i];
        if !is_async && !is_sync {
            continue; // dead function
        }
        // Interrupt handler bodies run with interrupts disabled, so their
        // accesses are protected on their side; the race comes from the
        // *synchronous* side being unprotected.
        scan_block(
            &f.body,
            is_async,
            is_sync,
            is_async && !is_sync, // handlers count as protected context
            &mut acc,
            &mut deref_async,
            &mut deref_sync_unprotected,
            &mut atomic_sections,
        );
    }

    let mut report = ConcurrencyReport {
        atomic_sections,
        ..Default::default()
    };
    for (i, g) in program.globals.iter_mut().enumerate() {
        let a = &acc[i];
        // Pointer conservatism: an address-taken global may be reached
        // through any pointer dereference in either context.
        let async_any = a.async_any || (a.addr_taken && deref_async);
        let sync_unprot = a.sync_unprotected || (a.addr_taken && deref_sync_unprotected);
        let racy = async_any && sync_unprot && !g.is_const;
        if g.norace && racy {
            report.norace_suppressed.push(g.name.clone());
        }
        if racy {
            g.racy = true;
            report.racy.push(g.name.clone());
        }
    }
    report.async_functions = program
        .functions
        .iter()
        .enumerate()
        .filter(|(i, _)| async_ctx[*i])
        .map(|(_, f)| f.name.clone())
        .collect();
    report
}

#[allow(clippy::too_many_arguments)]
fn scan_block(
    block: &Block,
    is_async: bool,
    is_sync: bool,
    protected: bool,
    acc: &mut [Access],
    deref_async: &mut bool,
    deref_sync_unprotected: &mut bool,
    atomic_sections: &mut usize,
) {
    for s in block {
        match s {
            Stmt::Atomic { body, .. } => {
                *atomic_sections += 1;
                scan_block(
                    body,
                    is_async,
                    is_sync,
                    true,
                    acc,
                    deref_async,
                    deref_sync_unprotected,
                    atomic_sections,
                );
                continue;
            }
            Stmt::If { then_, else_, .. } => {
                scan_block(
                    then_,
                    is_async,
                    is_sync,
                    protected,
                    acc,
                    deref_async,
                    deref_sync_unprotected,
                    atomic_sections,
                );
                scan_block(
                    else_,
                    is_async,
                    is_sync,
                    protected,
                    acc,
                    deref_async,
                    deref_sync_unprotected,
                    atomic_sections,
                );
            }
            Stmt::While { body, .. } | Stmt::Block(body) => {
                scan_block(
                    body,
                    is_async,
                    is_sync,
                    protected,
                    acc,
                    deref_async,
                    deref_sync_unprotected,
                    atomic_sections,
                );
            }
            _ => {}
        }
        // Expression-level accesses of this statement.
        let mut on_globals = |gid: GlobalId, taken: bool| {
            let a = &mut acc[gid.0 as usize];
            if taken {
                a.addr_taken = true;
                return;
            }
            if is_async {
                a.async_any = true;
            }
            if is_sync && !protected {
                a.sync_unprotected = true;
            }
        };
        let mut seen_deref = false;
        let mut visit_expr = |e: &Expr| {
            visit::walk_expr(e, &mut |x| match &x.kind {
                ExprKind::Load(p) => {
                    if let PlaceBase::Global(g) = &p.base {
                        on_globals(*g, false);
                    }
                    if matches!(p.base, PlaceBase::Deref(_)) {
                        seen_deref = true;
                    }
                }
                ExprKind::AddrOf(p) => {
                    if let PlaceBase::Global(g) = &p.base {
                        on_globals(*g, true);
                    }
                    if matches!(p.base, PlaceBase::Deref(_)) {
                        seen_deref = true;
                    }
                }
                _ => {}
            });
        };
        visit::stmt_exprs(s, &mut visit_expr);
        // Assignment / call destinations.
        let mut dest = |p: &Place| {
            if let PlaceBase::Global(g) = &p.base {
                let a = &mut acc[g.0 as usize];
                if is_async {
                    a.async_any = true;
                }
                if is_sync && !protected {
                    a.sync_unprotected = true;
                }
            }
            if matches!(p.base, PlaceBase::Deref(_)) {
                seen_deref = true;
            }
        };
        match s {
            Stmt::Assign(p, _) => dest(p),
            Stmt::Call { dst: Some(p), .. } | Stmt::BuiltinCall { dst: Some(p), .. } => dest(p),
            _ => {}
        }
        if seen_deref {
            if is_async {
                *deref_async = true;
            }
            if is_sync && !protected {
                *deref_sync_unprotected = true;
            }
        }
    }
}

/// Convenience: the set of racy global names (for assertions).
pub fn racy_names(report: &ConcurrencyReport) -> HashSet<&str> {
    report.racy.iter().map(String::as_str).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcil::parse_and_lower;

    fn analyze_src(src: &str) -> (tcil::Program, ConcurrencyReport) {
        let mut p = parse_and_lower(src).unwrap();
        let r = analyze(&mut p);
        (p, r)
    }

    #[test]
    fn unprotected_cross_context_global_is_racy() {
        let (_, r) = analyze_src(
            "uint8_t shared;
             interrupt(TIMER0) void h() { shared = 1; }
             void main() { shared = 2; }",
        );
        assert_eq!(r.racy, vec!["shared"]);
    }

    #[test]
    fn atomic_protection_clears_race() {
        let (_, r) = analyze_src(
            "uint8_t shared;
             interrupt(TIMER0) void h() { shared = 1; }
             void main() { atomic { shared = 2; } }",
        );
        assert!(r.racy.is_empty());
    }

    #[test]
    fn sync_only_global_is_not_racy() {
        let (_, r) = analyze_src(
            "uint8_t x;
             task void t() { x = 1; }
             void main() { x = 2; }",
        );
        assert!(r.racy.is_empty());
    }

    #[test]
    fn norace_is_suppressed() {
        let (p, r) = analyze_src(
            "norace uint8_t shared;
             interrupt(TIMER0) void h() { shared = 1; }
             void main() { shared = 2; }",
        );
        assert_eq!(r.racy, vec!["shared"]);
        assert_eq!(r.norace_suppressed, vec!["shared"]);
        assert!(p.globals[0].racy);
    }

    #[test]
    fn reachability_through_calls() {
        let (_, r) = analyze_src(
            "uint8_t shared;
             void helper() { shared = 1; }
             interrupt(TIMER0) void h() { helper(); }
             void main() { shared = 2; }",
        );
        assert_eq!(r.racy, vec!["shared"]);
        assert!(r.async_functions.iter().any(|f| f == "helper"));
    }

    #[test]
    fn pointer_conservatism() {
        // g's address is taken and a deref write happens in the handler:
        // conservatively racy even though no direct async access exists.
        let (_, r) = analyze_src(
            "uint8_t g;
             uint8_t * p;
             void main() { p = &g; g = 1; }
             interrupt(TIMER0) void h() { *p = 3; }",
        );
        assert!(racy_names(&r).contains("g"));
    }

    #[test]
    fn counts_atomic_sections() {
        let (_, r) = analyze_src(
            "uint8_t a;
             void main() { atomic { a = 1; } atomic { a = 2; } }",
        );
        assert_eq!(r.atomic_sections, 2);
    }
}
