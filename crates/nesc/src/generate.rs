//! Whole-program generation: rewrites each module's AST against the wiring
//! plan, synthesizes fan-out wrappers, default event handlers, and the
//! TinyOS task scheduler, and merges everything into one `tcil` unit.
//!
//! Name mangling uses `Module__Alias__method` / `Module__name` (double
//! underscore), which keeps generated names lexable so that synthesized
//! code can be produced as plain TCL text and run through the normal
//! parser.

use std::collections::{BTreeMap, HashMap, HashSet};

use tcil::ast::{self, Expr, ExprKind};
use tcil::parser::{parse_unit, Dialect};
use tcil::CompileError;

use crate::parse::{InterfaceDef, Method, ModuleDef, Parsed};
use crate::wiring::{ModEndpoint, Plan};

/// Maximum number of queued tasks (TinyOS 1.x uses a small power of two).
pub const MAX_TASKS: u32 = 8;

/// Generates the merged translation unit for the application.
///
/// # Errors
///
/// Reports nesC-level semantic errors: `call` on a provided interface,
/// `signal` on a used interface, unwired command calls, unknown interface
/// methods, posts of unknown tasks, missing command implementations, and
/// name-mangling collisions.
pub fn generate(parsed: &Parsed, plan: &Plan) -> Result<ast::Unit, CompileError> {
    let mut gen = Generator {
        parsed,
        plan,
        mangles: HashMap::new(),
        task_ids: BTreeMap::new(),
        fanouts: BTreeMap::new(),
        stubs: BTreeMap::new(),
        out: ast::Unit::default(),
    };
    gen.assign_task_ids();
    gen.out.items.extend(parsed.header_items.iter().cloned());
    for m in &plan.modules {
        gen.rewrite_module(&parsed.modules[m])?;
    }
    gen.synthesize_missing_events()?;
    gen.emit_fanouts_and_stubs()?;
    gen.emit_scheduler()?;
    Ok(gen.out)
}

/// Mangles a module-level plain name.
pub fn mangle(module: &str, name: &str) -> String {
    format!("{module}__{name}")
}

/// Mangles an interface-method implementation name.
pub fn mangle_iface(module: &str, alias: &str, method: &str) -> String {
    format!("{module}__{alias}__{method}")
}

struct Generator<'a> {
    parsed: &'a Parsed,
    plan: &'a Plan,
    /// Mangled name → origin, to detect collisions.
    mangles: HashMap<String, String>,
    /// Mangled task function name → dispatch id.
    task_ids: BTreeMap<String, u32>,
    /// (fanout fn name) → (ret/params method, resolved target fn names).
    fanouts: BTreeMap<String, (Method, Vec<String>)>,
    /// (stub fn name) → method signature.
    stubs: BTreeMap<String, Method>,
    out: ast::Unit,
}

impl<'a> Generator<'a> {
    fn register(&mut self, mangled: &str, origin: &str) -> Result<(), CompileError> {
        if let Some(prev) = self.mangles.insert(mangled.to_string(), origin.to_string()) {
            return Err(CompileError::generic(format!(
                "name mangling collision: `{mangled}` from `{origin}` and `{prev}`"
            )));
        }
        Ok(())
    }

    fn assign_task_ids(&mut self) {
        let mut next = 0u32;
        for mname in &self.plan.modules {
            let m = &self.parsed.modules[mname];
            for item in &m.unit.items {
                if let ast::Item::Func(f) = item {
                    if f.kind == ast::FuncKind::Task {
                        self.task_ids.insert(mangle(mname, &f.name), next);
                        next += 1;
                    }
                }
            }
        }
    }

    fn iface_def(&self, name: &str) -> Result<&'a InterfaceDef, CompileError> {
        self.parsed
            .interfaces
            .get(name)
            .ok_or_else(|| CompileError::generic(format!("unknown interface `{name}`")))
    }

    // ----- module rewriting -----

    fn rewrite_module(&mut self, m: &ModuleDef) -> Result<(), CompileError> {
        // Collect module-level names.
        let mut globals = HashSet::new();
        let mut funcs = HashSet::new();
        for item in &m.unit.items {
            match item {
                ast::Item::Global(g) => {
                    globals.insert(g.sig.name.clone());
                }
                ast::Item::Func(f) => {
                    funcs.insert(f.name.clone());
                }
                _ => {}
            }
        }
        // Verify every provided command is implemented.
        for slot in &m.slots {
            if !slot.provides {
                continue;
            }
            let idef = self.iface_def(&slot.iface)?;
            for method in &idef.methods {
                if !method.is_event && !funcs.contains(&format!("{}.{}", slot.alias, method.name)) {
                    return Err(CompileError::generic(format!(
                        "module `{}` provides `{}` but does not implement command `{}.{}`",
                        m.name, slot.iface, slot.alias, method.name
                    )));
                }
            }
        }
        for item in &m.unit.items {
            match item {
                ast::Item::Struct(_) | ast::Item::Enum(_) => self.out.items.push(item.clone()),
                ast::Item::Global(g) => {
                    let mut g = g.clone();
                    let mangled = mangle(&m.name, &g.sig.name);
                    self.register(&mangled, &m.name)?;
                    g.sig.name = mangled;
                    self.out.items.push(ast::Item::Global(g));
                }
                ast::Item::Func(f) => {
                    let mut f = f.clone();
                    f.name = self.mangle_func_name(m, &f)?;
                    if f.name != "main" {
                        self.register(&f.name.clone(), &m.name)?;
                    }
                    let mut rw = Rewriter {
                        gen: self,
                        module: m,
                        globals: &globals,
                        funcs: &funcs,
                        scopes: vec![f.params.iter().map(|p| p.name.clone()).collect()],
                        errors: Vec::new(),
                    };
                    rw.block(&mut f.body);
                    if let Some(e) = rw.errors.into_iter().next() {
                        return Err(e);
                    }
                    self.out.items.push(ast::Item::Func(f));
                }
            }
        }
        Ok(())
    }

    fn mangle_func_name(
        &mut self,
        m: &ModuleDef,
        f: &ast::FuncDecl,
    ) -> Result<String, CompileError> {
        if let Some((alias, method)) = f.name.split_once('.') {
            let slot = m.slot(alias).ok_or_else(|| {
                CompileError::generic(format!(
                    "module `{}` implements `{}` but has no interface `{alias}`",
                    m.name, f.name
                ))
            })?;
            let idef = self.iface_def(&slot.iface)?;
            let mdef = idef.method(method).ok_or_else(|| {
                CompileError::generic(format!(
                    "interface `{}` has no method `{method}` (module `{}`)",
                    slot.iface, m.name
                ))
            })?;
            // Providers implement commands; users implement events.
            if mdef.is_event == slot.provides {
                return Err(CompileError::generic(format!(
                    "module `{}`: `{}.{}` is {} — implemented on the wrong side",
                    m.name,
                    alias,
                    method,
                    if mdef.is_event {
                        "an event"
                    } else {
                        "a command"
                    }
                )));
            }
            if f.params.len() != mdef.decl.params.len() {
                return Err(CompileError::generic(format!(
                    "module `{}`: `{}.{}` has {} parameters, interface declares {}",
                    m.name,
                    alias,
                    method,
                    f.params.len(),
                    mdef.decl.params.len()
                )));
            }
            Ok(mangle_iface(&m.name, alias, method))
        } else if m.name == "Main" && f.name == "main" {
            Ok("main".to_string())
        } else {
            Ok(mangle(&m.name, &f.name))
        }
    }

    /// Resolves a `call Alias.method(...)` in `module` to a callee name,
    /// creating a fan-out wrapper if wired to several providers.
    fn resolve_call(
        &mut self,
        module: &ModuleDef,
        alias: &str,
        method: &str,
    ) -> Result<String, CompileError> {
        let slot = module.slot(alias).ok_or_else(|| {
            CompileError::generic(format!(
                "module `{}` calls unknown interface `{alias}`",
                module.name
            ))
        })?;
        if slot.provides {
            return Err(CompileError::generic(format!(
                "module `{}` uses `call` on provided interface `{alias}` (use `signal`)",
                module.name
            )));
        }
        let idef = self.iface_def(&slot.iface)?;
        let mdef = idef
            .method(method)
            .ok_or_else(|| {
                CompileError::generic(format!(
                    "interface `{}` has no method `{method}`",
                    slot.iface
                ))
            })?
            .clone();
        if mdef.is_event {
            return Err(CompileError::generic(format!(
                "`call {alias}.{method}`: `{method}` is an event; commands only"
            )));
        }
        let key: ModEndpoint = (module.name.clone(), alias.to_string());
        let providers = self.plan.cmd_targets.get(&key).cloned().unwrap_or_default();
        match providers.len() {
            0 => Err(CompileError::generic(format!(
                "module `{}`: `call {alias}.{method}` but interface `{alias}` is not wired",
                module.name
            ))),
            1 => Ok(mangle_iface(&providers[0].0, &providers[0].1, method)),
            _ => {
                let fan = format!("{}__{}__{}__fan", module.name, alias, method);
                let targets = providers
                    .iter()
                    .map(|(pm, pa)| mangle_iface(pm, pa, method))
                    .collect();
                self.fanouts.entry(fan.clone()).or_insert((mdef, targets));
                Ok(fan)
            }
        }
    }

    /// Resolves a `signal Alias.event(...)` in `module` to a callee name.
    fn resolve_signal(
        &mut self,
        module: &ModuleDef,
        alias: &str,
        method: &str,
    ) -> Result<String, CompileError> {
        let slot = module.slot(alias).ok_or_else(|| {
            CompileError::generic(format!(
                "module `{}` signals unknown interface `{alias}`",
                module.name
            ))
        })?;
        if !slot.provides {
            return Err(CompileError::generic(format!(
                "module `{}` uses `signal` on used interface `{alias}` (use `call`)",
                module.name
            )));
        }
        let idef = self.iface_def(&slot.iface)?;
        let mdef = idef
            .method(method)
            .ok_or_else(|| {
                CompileError::generic(format!(
                    "interface `{}` has no method `{method}`",
                    slot.iface
                ))
            })?
            .clone();
        if !mdef.is_event {
            return Err(CompileError::generic(format!(
                "`signal {alias}.{method}`: `{method}` is a command; events only"
            )));
        }
        let key: ModEndpoint = (module.name.clone(), alias.to_string());
        let users = self.plan.evt_targets.get(&key).cloned().unwrap_or_default();
        match users.len() {
            0 => {
                // Unwired event: a default no-op handler (nesC `default`).
                let stub = format!("{}__{}__{}__dflt", module.name, alias, method);
                self.stubs.entry(stub.clone()).or_insert(mdef);
                Ok(stub)
            }
            1 => Ok(mangle_iface(&users[0].0, &users[0].1, method)),
            _ => {
                let fan = format!("{}__{}__{}__efan", module.name, alias, method);
                let targets = users
                    .iter()
                    .map(|(um, ua)| mangle_iface(um, ua, method))
                    .collect();
                self.fanouts.entry(fan.clone()).or_insert((mdef, targets));
                Ok(fan)
            }
        }
    }

    /// For every wired user of an interface, synthesize default handlers
    /// for events the user does not implement.
    fn synthesize_missing_events(&mut self) -> Result<(), CompileError> {
        let mut missing: Vec<(String, Method)> = Vec::new();
        let defined: HashSet<String> = self
            .out
            .items
            .iter()
            .filter_map(|i| match i {
                ast::Item::Func(f) => Some(f.name.clone()),
                _ => None,
            })
            .collect();
        for (user_mod, user_alias) in self.plan.cmd_targets.keys() {
            let m = &self.parsed.modules[user_mod];
            let Some(slot) = m.slot(user_alias) else {
                continue;
            };
            let idef = self.iface_def(&slot.iface)?;
            for method in &idef.methods {
                if !method.is_event {
                    continue;
                }
                let name = mangle_iface(user_mod, user_alias, &method.name);
                if !defined.contains(&name) {
                    missing.push((name, method.clone()));
                }
            }
        }
        missing.sort_by(|a, b| a.0.cmp(&b.0));
        for (name, method) in missing {
            if self.stubs.contains_key(&name) {
                continue;
            }
            self.stubs.insert(name, method);
        }
        Ok(())
    }

    // ----- synthesized code (as TCL text) -----

    fn emit_text(&mut self, text: &str) -> Result<(), CompileError> {
        let unit = parse_unit(text, Dialect::NesC).map_err(|e| {
            CompileError::generic(format!(
                "internal: synthesized code failed to parse: {e}\n{text}"
            ))
        })?;
        self.out.items.extend(unit.items);
        Ok(())
    }

    fn emit_fanouts_and_stubs(&mut self) -> Result<(), CompileError> {
        let fanouts = std::mem::take(&mut self.fanouts);
        for (name, (method, targets)) in fanouts {
            let sig = signature_text(&name, &method);
            let args = arg_names(&method).join(", ");
            let is_void = method.decl.ret
                == ast::TypeExpr {
                    base: ast::BaseType::Void,
                    ptr_depth: 0,
                };
            let mut body = String::new();
            if is_void {
                for t in &targets {
                    body.push_str(&format!("    {t}({args});\n"));
                }
            } else {
                let ret = type_text(&method.decl.ret);
                let is_ptr = method.decl.ret.ptr_depth > 0;
                body.push_str(&format!("    {ret} r;\n    {ret} t;\n"));
                for (i, tgt) in targets.iter().enumerate() {
                    if i == 0 {
                        body.push_str(&format!("    r = {tgt}({args});\n"));
                    } else if is_ptr {
                        // Pointer results (buffer swaps): last value wins.
                        body.push_str(&format!("    t = {tgt}({args});\n    r = t;\n"));
                    } else {
                        // result_t combiner: AND of results (SUCCESS = 1).
                        body.push_str(&format!("    t = {tgt}({args});\n    r = r & t;\n"));
                    }
                }
                body.push_str("    return r;\n");
            }
            self.emit_text(&format!("{sig} {{\n{body}}}\n"))?;
        }
        let stubs = std::mem::take(&mut self.stubs);
        for (name, method) in stubs {
            let sig = signature_text(&name, &method);
            let is_void = method.decl.ret
                == ast::TypeExpr {
                    base: ast::BaseType::Void,
                    ptr_depth: 0,
                };
            // Pointer-returning events (buffer swaps) default to NULL —
            // "keep your buffer"; result_t events default to SUCCESS.
            let body = if is_void {
                String::new()
            } else if method.decl.ret.ptr_depth > 0 {
                "    return 0;\n".to_string()
            } else {
                "    return 1;\n".to_string()
            };
            self.emit_text(&format!("{sig} {{\n{body}}}\n"))?;
        }
        Ok(())
    }

    fn emit_scheduler(&mut self) -> Result<(), CompileError> {
        let mut dispatch = String::new();
        for (fn_name, id) in &self.task_ids {
            if dispatch.is_empty() {
                dispatch.push_str(&format!("    if (id == {id}) {{ {fn_name}(); }}\n"));
            } else {
                dispatch.push_str(&format!("    else if (id == {id}) {{ {fn_name}(); }}\n"));
            }
        }
        let text = format!(
            "
enum {{ TOSH_MAX_TASKS = {MAX_TASKS} }};
uint8_t TOSH_queue[TOSH_MAX_TASKS];
uint8_t TOSH_head;
uint8_t TOSH_count;

void TOSH_sched_init() {{
    TOSH_head = 0;
    TOSH_count = 0;
}}

result_t TOS_post(uint8_t id) {{
    uint8_t ok = 0;
    atomic {{
        if (TOSH_count < TOSH_MAX_TASKS) {{
            TOSH_queue[(uint8_t)((TOSH_head + TOSH_count) % TOSH_MAX_TASKS)] = id;
            TOSH_count = TOSH_count + 1;
            ok = 1;
        }}
    }}
    return ok;
}}

void TOSH_dispatch(uint8_t id) {{
{dispatch}}}

void TOSH_run_task() {{
    uint8_t id = 0;
    uint8_t have = 0;
    atomic {{
        if (TOSH_count > 0) {{
            id = TOSH_queue[TOSH_head];
            TOSH_head = (uint8_t)((TOSH_head + 1) % TOSH_MAX_TASKS);
            TOSH_count = TOSH_count - 1;
            have = 1;
        }}
    }}
    if (have) {{ TOSH_dispatch(id); }} else {{ __sleep(); }}
}}
"
        );
        self.emit_text(&text)
    }
}

/// Renders a type expression as source text.
fn type_text(t: &ast::TypeExpr) -> String {
    let base = match &t.base {
        ast::BaseType::Void => "void".to_string(),
        ast::BaseType::Int(k) => k.to_string(),
        ast::BaseType::Struct(n) => format!("struct {n}"),
    };
    format!("{base}{}", " *".repeat(t.ptr_depth as usize))
}

fn arg_names(m: &Method) -> Vec<String> {
    (0..m.decl.params.len()).map(|i| format!("p{i}")).collect()
}

fn signature_text(name: &str, m: &Method) -> String {
    let params: Vec<String> = m
        .decl
        .params
        .iter()
        .enumerate()
        .map(|(i, p)| format!("{} p{i}", type_text(&p.ty)))
        .collect();
    format!("{} {name}({})", type_text(&m.decl.ret), params.join(", "))
}

// ----- AST rewriting -----

struct Rewriter<'a, 'b> {
    gen: &'b mut Generator<'a>,
    module: &'b ModuleDef,
    globals: &'b HashSet<String>,
    funcs: &'b HashSet<String>,
    scopes: Vec<HashSet<String>>,
    errors: Vec<CompileError>,
}

impl Rewriter<'_, '_> {
    fn is_local(&self, name: &str) -> bool {
        self.scopes.iter().any(|s| s.contains(name))
    }

    fn block(&mut self, b: &mut ast::Block) {
        self.scopes.push(HashSet::new());
        for s in &mut b.stmts {
            self.stmt(s);
        }
        self.scopes.pop();
    }

    fn stmt(&mut self, s: &mut ast::Stmt) {
        match s {
            ast::Stmt::Decl { sig, init } => {
                if let Some(e) = init {
                    self.expr(e);
                }
                self.scopes
                    .last_mut()
                    .expect("scope")
                    .insert(sig.name.clone());
            }
            ast::Stmt::Expr(e) => self.expr(e),
            ast::Stmt::Assign { lhs, rhs, .. } => {
                self.expr(lhs);
                self.expr(rhs);
            }
            ast::Stmt::If { cond, then_, else_ } => {
                self.expr(cond);
                self.block(then_);
                self.block(else_);
            }
            ast::Stmt::While { cond, body } => {
                self.expr(cond);
                self.block(body);
            }
            ast::Stmt::DoWhile { body, cond } => {
                self.block(body);
                self.expr(cond);
            }
            ast::Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(HashSet::new());
                if let Some(i) = init {
                    self.stmt(i);
                }
                if let Some(c) = cond {
                    self.expr(c);
                }
                if let Some(st) = step {
                    self.stmt(st);
                }
                self.block(body);
                self.scopes.pop();
            }
            ast::Stmt::Return(Some(e), _) => self.expr(e),
            ast::Stmt::Atomic(b) | ast::Stmt::Block(b) => self.block(b),
            _ => {}
        }
    }

    fn expr(&mut self, e: &mut Expr) {
        match &mut e.kind {
            ExprKind::Ident(name) => {
                if !self.is_local(name) && self.globals.contains(name.as_str()) {
                    *name = mangle(&self.module.name, name);
                }
            }
            ExprKind::Call { name, args } => {
                for a in args.iter_mut() {
                    self.expr(a);
                }
                if self.funcs.contains(name.as_str()) {
                    *name = mangle(&self.module.name, name);
                }
            }
            ExprKind::IfaceCall {
                kind,
                iface,
                method,
                args,
            } => {
                for a in args.iter_mut() {
                    self.expr(a);
                }
                let resolved = match kind {
                    ast::IfaceCallKind::Call => self.gen.resolve_call(self.module, iface, method),
                    ast::IfaceCallKind::Signal => {
                        self.gen.resolve_signal(self.module, iface, method)
                    }
                };
                match resolved {
                    Ok(callee) => {
                        let args = std::mem::take(args);
                        e.kind = ExprKind::Call { name: callee, args };
                    }
                    Err(err) => self.errors.push(err),
                }
            }
            ExprKind::Post(task) => {
                let mangled = mangle(&self.module.name, task);
                match self.gen.task_ids.get(&mangled) {
                    Some(id) => {
                        let idexpr = Expr::new(ExprKind::Int(*id as i64), e.pos);
                        e.kind = ExprKind::Call {
                            name: "TOS_post".into(),
                            args: vec![idexpr],
                        };
                    }
                    None => self.errors.push(CompileError::generic(format!(
                        "module `{}`: post of unknown task `{task}`",
                        self.module.name
                    ))),
                }
            }
            ExprKind::Unary(_, a)
            | ExprKind::Deref(a)
            | ExprKind::AddrOf(a)
            | ExprKind::Cast(_, a)
            | ExprKind::SizeofExpr(a) => self.expr(a),
            ExprKind::Binary(_, a, b) | ExprKind::Index(a, b) => {
                self.expr(a);
                self.expr(b);
            }
            ExprKind::Ternary(c, a, b) => {
                self.expr(c);
                self.expr(a);
                self.expr(b);
            }
            ExprKind::Field(a, _) | ExprKind::Arrow(a, _) => self.expr(a),
            ExprKind::IncDec { target, .. } => self.expr(target),
            ExprKind::Int(_) | ExprKind::Str(_) | ExprKind::SizeofType(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{compile, SourceSet};

    fn blink_sources() -> SourceSet {
        let mut s = SourceSet::new();
        s.add(
            "ifaces.nc",
            "interface StdControl { command result_t init(); command result_t start(); }
             interface Timer { command result_t start(uint16_t interval); event result_t fired(); }
             interface Leds { command void set(uint8_t v); }",
        );
        s.add(
            "LedsC.nc",
            "module LedsC { provides interface Leds; }
             implementation { command void Leds.set(uint8_t v) { __hw_write8(0xF000, v); } }",
        );
        s.add(
            "TimerC.nc",
            "module TimerC { provides interface Timer; }
             implementation {
                 uint16_t interval;
                 command result_t Timer.start(uint16_t i) {
                     interval = i;
                     __hw_write16(0xF012, i);
                     __hw_write16(0xF010, 1);
                     return SUCCESS;
                 }
                 interrupt(TIMER0) void fire() { signal Timer.fired(); }
             }",
        );
        s.add(
            "BlinkM.nc",
            "module BlinkM { provides interface StdControl; uses interface Timer; uses interface Leds; }
             implementation {
                 uint8_t state;
                 task void toggle() {
                     state = (uint8_t)(state ^ 1);
                     call Leds.set(state);
                 }
                 command result_t StdControl.init() { state = 0; return SUCCESS; }
                 command result_t StdControl.start() { return call Timer.start(100); }
                 event result_t Timer.fired() { post toggle(); return SUCCESS; }
             }",
        );
        s.add(
            "Blink.nc",
            "configuration Blink { } implementation {
                 components Main, BlinkM, TimerC, LedsC;
                 Main.StdControl -> BlinkM.StdControl;
                 BlinkM.Timer -> TimerC.Timer;
                 BlinkM.Leds -> LedsC.Leds;
             }",
        );
        s
    }

    #[test]
    fn compiles_blink_end_to_end() {
        let out = compile(&blink_sources(), "Blink").unwrap();
        let p = &out.program;
        assert!(p.entry.is_some(), "main generated");
        assert_eq!(p.tasks.len(), 1, "one task");
        assert!(p.find_function("BlinkM__toggle").is_some());
        assert!(p.find_function("BlinkM__Timer__fired").is_some());
        assert!(p.find_function("TOS_post").is_some());
        // The interrupt handler is registered on vector 0.
        let h = p.find_function("TimerC__fire").unwrap();
        assert_eq!(p.func(h).interrupt, Some(0));
    }

    #[test]
    fn unwired_call_is_error() {
        let mut s = blink_sources();
        s.add(
            "Bad.nc",
            "configuration Bad { } implementation {
                 components Main, BlinkM, TimerC, LedsC;
                 Main.StdControl -> BlinkM.StdControl;
                 BlinkM.Timer -> TimerC.Timer;
             }",
        );
        // BlinkM.Leds unwired but called.
        assert!(compile(&s, "Bad").is_err());
    }

    #[test]
    fn signal_to_unwired_event_gets_stub() {
        let mut s = SourceSet::new();
        s.add(
            "i.nc",
            "interface StdControl { command result_t init(); command result_t start(); }
             interface Send { command result_t send(); event result_t done(); }",
        );
        s.add(
            "SenderM.nc",
            "module SenderM { provides interface StdControl; provides interface Send; }
             implementation {
                 command result_t StdControl.init() { return SUCCESS; }
                 command result_t StdControl.start() { signal Send.done(); return SUCCESS; }
                 command result_t Send.send() { return SUCCESS; }
             }",
        );
        s.add(
            "App.nc",
            "configuration App { } implementation {
                 components Main, SenderM;
                 Main.StdControl -> SenderM.StdControl;
             }",
        );
        let out = compile(&s, "App").unwrap();
        assert!(out
            .program
            .find_function("SenderM__Send__done__dflt")
            .is_some());
    }

    #[test]
    fn fanout_combines_results() {
        let mut s = SourceSet::new();
        s.add(
            "i.nc",
            "interface StdControl { command result_t init(); command result_t start(); }",
        );
        s.add(
            "AM.nc",
            "module AM { provides interface StdControl; }
             implementation {
                 command result_t StdControl.init() { return SUCCESS; }
                 command result_t StdControl.start() { return SUCCESS; }
             }",
        );
        s.add(
            "BM.nc",
            "module BM { provides interface StdControl; }
             implementation {
                 command result_t StdControl.init() { return SUCCESS; }
                 command result_t StdControl.start() { return SUCCESS; }
             }",
        );
        s.add(
            "App.nc",
            "configuration App { } implementation {
                 components Main, AM, BM;
                 Main.StdControl -> AM.StdControl;
                 Main.StdControl -> BM.StdControl;
             }",
        );
        let out = compile(&s, "App").unwrap();
        assert!(out
            .program
            .find_function("Main__StdControl__init__fan")
            .is_some());
    }

    #[test]
    fn wrong_direction_signal_is_error() {
        let mut s = SourceSet::new();
        s.add(
            "i.nc",
            "interface StdControl { command result_t init(); command result_t start(); }",
        );
        s.add(
            "M.nc",
            "module M { provides interface StdControl; }
             implementation {
                 command result_t StdControl.init() { signal StdControl.start(); return SUCCESS; }
                 command result_t StdControl.start() { return SUCCESS; }
             }",
        );
        s.add(
            "App.nc",
            "configuration App { } implementation {
                 components Main, M;
                 Main.StdControl -> M.StdControl;
             }",
        );
        // `start` is a command, not an event.
        assert!(compile(&s, "App").is_err());
    }
}
