//! nesC-lite: the component frontend of the Safe TinyOS toolchain.
//!
//! This crate plays the role of the nesC compiler in the paper's Figure 1:
//! it parses interfaces, modules, and configurations; resolves wiring into
//! direct calls; generates the TinyOS task scheduler and `main`; and emits
//! (a) a whole-program [`tcil::Program`] and (b) the **non-atomic variable
//! report** — the list of race-candidate globals that the CCured stage uses
//! to decide where safety checks need locks (§2.2 of the paper).
//!
//! The accepted language is a faithful miniature of nesC 1.x:
//!
//! * `interface I { command t f(...); event t g(...); }`
//! * `module M { provides interface A; uses interface B as C; }
//!    implementation { ...TCL code with call/signal/post/task/atomic... }`
//! * `configuration K { provides interface A; } implementation {
//!    components M, N; M.B -> N.A; A = M.A; }`
//!
//! Wiring supports fan-out (one command wired to several providers, one
//! event signaled to several users) exactly because the paper's TinyOS
//! apps rely on it (`Main.StdControl` is classically wired to several
//! components).
//!
//! # Example
//!
//! ```
//! use nesc::{compile, SourceSet};
//!
//! let mut set = SourceSet::new();
//! set.add("Leds.nc", "interface Leds { command void set(uint8_t v); }");
//! set.add(
//!     "LedsC.nc",
//!     "module LedsC { provides interface Leds; }
//!      implementation {
//!        command void Leds.set(uint8_t v) { __hw_write8(0xF000, v); }
//!      }",
//! );
//! set.add(
//!     "StdControl.nc",
//!     "interface StdControl { command result_t init(); command result_t start(); }",
//! );
//! set.add(
//!     "BlinkM.nc",
//!     "module BlinkM { provides interface StdControl; uses interface Leds; }
//!      implementation {
//!        command result_t StdControl.init() { call Leds.set(1); return SUCCESS; }
//!        command result_t StdControl.start() { return SUCCESS; }
//!      }",
//! );
//! set.add(
//!     "Blink.nc",
//!     "configuration Blink { } implementation {
//!        components Main, BlinkM, LedsC;
//!        Main.StdControl -> BlinkM.StdControl;
//!        BlinkM.Leds -> LedsC.Leds;
//!      }",
//! );
//! let out = compile(&set, "Blink").unwrap();
//! assert!(out.program.entry.is_some());
//! ```

pub mod concurrency;
pub mod generate;
pub mod parse;
pub mod scan;
pub mod wiring;

use tcil::CompileError;

pub use concurrency::ConcurrencyReport;

/// A set of nesC-lite source files (components, interfaces, headers).
#[derive(Debug, Clone, Default)]
pub struct SourceSet {
    files: Vec<(String, String)>,
}

impl SourceSet {
    /// Creates an empty source set.
    pub fn new() -> SourceSet {
        SourceSet::default()
    }

    /// Adds a source file.
    pub fn add(&mut self, name: impl Into<String>, text: impl Into<String>) -> &mut Self {
        self.files.push((name.into(), text.into()));
        self
    }

    /// Iterates over `(name, text)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.files.iter().map(|(n, t)| (n.as_str(), t.as_str()))
    }
}

/// Result of compiling an application.
#[derive(Debug, Clone)]
pub struct CompileOutput {
    /// The lowered whole program.
    pub program: tcil::Program,
    /// The non-atomic variable report (race candidates).
    pub report: ConcurrencyReport,
    /// Component instantiation order (diagnostics).
    pub components: Vec<String>,
}

/// A frontend with the source set already parsed.
///
/// Parsing is app-independent: the same component library serves every
/// application of an evaluation grid. Constructing a `Frontend` once and
/// calling [`Frontend::compile`] per app skips the re-parse that
/// [`compile`] pays on every call — the frontend half of the toolchain's
/// artifact cache.
#[derive(Debug, Clone)]
pub struct Frontend {
    parsed: parse::Parsed,
}

impl Frontend {
    /// Parses `sources` into a reusable frontend.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] for syntax errors in any source file.
    pub fn new(sources: &SourceSet) -> Result<Frontend, CompileError> {
        Ok(Frontend {
            parsed: parse::parse_sources(sources)?,
        })
    }

    /// Compiles the application whose top-level configuration (or module)
    /// is named `app` from the parsed sources.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] for unknown components or interfaces,
    /// unwired command calls, wiring type mismatches, and any type error
    /// in module code.
    pub fn compile(&self, app: &str) -> Result<CompileOutput, CompileError> {
        let plan = wiring::resolve(&self.parsed, app)?;
        let unit = generate::generate(&self.parsed, &plan)?;
        let mut program = tcil::lower::lower_unit(&unit)?;
        let report = concurrency::analyze(&mut program);
        Ok(CompileOutput {
            program,
            report,
            components: plan.instantiation_order.clone(),
        })
    }
}

/// Compiles the application whose top-level configuration (or module) is
/// named `app` from the given sources.
///
/// # Errors
///
/// Returns a [`CompileError`] for syntax errors, unknown components or
/// interfaces, unwired command calls, wiring type mismatches, and any
/// type error in module code.
pub fn compile(sources: &SourceSet, app: &str) -> Result<CompileOutput, CompileError> {
    Frontend::new(sources)?.compile(app)
}
