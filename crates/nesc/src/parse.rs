//! Parsers for the component-level grammar (interfaces, module/config
//! specifications, and configuration wiring). Module implementation code
//! is parsed by `tcil` with the nesC dialect enabled.

use std::collections::HashMap;

use tcil::ast;
use tcil::lexer::{lex, Tok, Token};
use tcil::parser::{parse_unit, Dialect};
use tcil::CompileError;

use crate::scan::{scan, RawItem};
use crate::SourceSet;

/// One command or event of an interface.
#[derive(Debug, Clone)]
pub struct Method {
    /// Method name.
    pub name: String,
    /// `true` for events (implemented by users), `false` for commands
    /// (implemented by providers).
    pub is_event: bool,
    /// Parsed signature (body is empty).
    pub decl: ast::FuncDecl,
}

/// A parsed `interface` declaration.
#[derive(Debug, Clone)]
pub struct InterfaceDef {
    /// Interface name.
    pub name: String,
    /// Methods in declaration order.
    pub methods: Vec<Method>,
}

impl InterfaceDef {
    /// Finds a method by name.
    pub fn method(&self, name: &str) -> Option<&Method> {
        self.methods.iter().find(|m| m.name == name)
    }
}

/// One `provides interface I as A;` / `uses interface I as A;` line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IfaceSlot {
    /// Local alias (defaults to the interface name).
    pub alias: String,
    /// Interface type name.
    pub iface: String,
    /// `provides` vs `uses`.
    pub provides: bool,
}

/// A parsed `module`.
#[derive(Debug, Clone)]
pub struct ModuleDef {
    /// Module name.
    pub name: String,
    /// Interface slots.
    pub slots: Vec<IfaceSlot>,
    /// Implementation translation unit (nesC dialect).
    pub unit: ast::Unit,
}

impl ModuleDef {
    /// Finds a slot by alias.
    pub fn slot(&self, alias: &str) -> Option<&IfaceSlot> {
        self.slots.iter().find(|s| s.alias == alias)
    }
}

/// An endpoint in a wiring statement: `Comp.Iface` or a bare `Iface`
/// (the enclosing configuration's own slot).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RawEndpoint {
    /// Component name (`None` for the configuration's own slot).
    pub comp: Option<String>,
    /// Interface alias.
    pub iface: String,
}

/// Wiring operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireOp {
    /// `user -> provider`
    To,
    /// `provider <- user`
    From,
    /// Pass-through equate (`own = inner`).
    Equate,
}

/// One wiring statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Wire {
    /// Left endpoint.
    pub lhs: RawEndpoint,
    /// Operator.
    pub op: WireOp,
    /// Right endpoint.
    pub rhs: RawEndpoint,
}

/// A parsed `configuration`.
#[derive(Debug, Clone)]
pub struct ConfigDef {
    /// Configuration name.
    pub name: String,
    /// Interface slots (for pass-through wiring).
    pub slots: Vec<IfaceSlot>,
    /// Included components.
    pub components: Vec<String>,
    /// Wiring statements.
    pub wires: Vec<Wire>,
}

/// Everything parsed from a [`SourceSet`].
#[derive(Debug, Clone, Default)]
pub struct Parsed {
    /// Interfaces by name.
    pub interfaces: HashMap<String, InterfaceDef>,
    /// Modules by name.
    pub modules: HashMap<String, ModuleDef>,
    /// Configurations by name.
    pub configs: HashMap<String, ConfigDef>,
    /// Header items (shared structs/enums/constants) in file order.
    pub header_items: Vec<ast::Item>,
}

/// The built-in `Main` pseudo-module: boots the scheduler, initializes and
/// starts the application through `StdControl`, then runs the task loop
/// forever. Injected automatically unless the sources define `Main`.
pub const MAIN_MODULE_SOURCE: &str = "
module Main { uses interface StdControl; }
implementation {
    void main() {
        TOSH_sched_init();
        call StdControl.init();
        call StdControl.start();
        __irq_enable();
        while (1) { TOSH_run_task(); }
    }
}
";

/// Parses every file in `sources`, injecting the built-in `Main` module.
///
/// # Errors
///
/// Returns the first syntax error, annotated with the file name.
pub fn parse_sources(sources: &SourceSet) -> Result<Parsed, CompileError> {
    let mut parsed = Parsed::default();
    for (file, text) in sources.iter() {
        parse_file(&mut parsed, file, text)?;
    }
    if !parsed.modules.contains_key("Main") {
        parse_file(&mut parsed, "<builtin Main>", MAIN_MODULE_SOURCE)?;
    }
    Ok(parsed)
}

fn parse_file(parsed: &mut Parsed, file: &str, text: &str) -> Result<(), CompileError> {
    let items = scan(text).map_err(|e| e.in_unit(file))?;
    for item in items {
        match item {
            RawItem::Interface { name, body } => {
                let def = parse_interface(&name, &body).map_err(|e| e.in_unit(file))?;
                if parsed.interfaces.insert(name.clone(), def).is_some() {
                    return Err(
                        CompileError::generic(format!("duplicate interface `{name}`"))
                            .in_unit(file),
                    );
                }
            }
            RawItem::Module { name, spec, body } => {
                let slots = parse_spec(&spec).map_err(|e| e.in_unit(file))?;
                let unit = parse_unit(&body, Dialect::NesC).map_err(|e| e.in_unit(file))?;
                let def = ModuleDef {
                    name: name.clone(),
                    slots,
                    unit,
                };
                if parsed.modules.insert(name.clone(), def).is_some() {
                    return Err(
                        CompileError::generic(format!("duplicate module `{name}`")).in_unit(file)
                    );
                }
            }
            RawItem::Configuration { name, spec, body } => {
                let slots = parse_spec(&spec).map_err(|e| e.in_unit(file))?;
                let (components, wires) = parse_wiring(&body).map_err(|e| e.in_unit(file))?;
                let def = ConfigDef {
                    name: name.clone(),
                    slots,
                    components,
                    wires,
                };
                if parsed.configs.insert(name.clone(), def).is_some() {
                    return Err(
                        CompileError::generic(format!("duplicate configuration `{name}`"))
                            .in_unit(file),
                    );
                }
            }
            RawItem::Header(text) => {
                let unit = parse_unit(&text, Dialect::Plain).map_err(|e| e.in_unit(file))?;
                parsed.header_items.extend(unit.items);
            }
        }
    }
    Ok(())
}

/// Parses an interface body by wrapping each method declaration in an
/// empty function body and running the TCL parser on the result.
fn parse_interface(name: &str, body: &str) -> Result<InterfaceDef, CompileError> {
    let mut methods = Vec::new();
    for raw in body.split(';') {
        let raw = raw.trim();
        if raw.is_empty() {
            continue;
        }
        let (is_event, rest) = if let Some(r) = raw.strip_prefix("command") {
            (false, r)
        } else if let Some(r) = raw.strip_prefix("event") {
            (true, r)
        } else {
            return Err(CompileError::generic(format!(
                "interface `{name}`: expected `command` or `event`, got `{raw}`"
            )));
        };
        let as_func = format!("{rest} {{ }}");
        let unit = parse_unit(&as_func, Dialect::Plain)
            .map_err(|e| CompileError::generic(format!("interface `{name}`: {e}")))?;
        let [ast::Item::Func(decl)] = &unit.items[..] else {
            return Err(CompileError::generic(format!(
                "interface `{name}`: `{raw}` is not a method declaration"
            )));
        };
        methods.push(Method {
            name: decl.name.clone(),
            is_event,
            decl: decl.clone(),
        });
    }
    Ok(InterfaceDef {
        name: name.to_string(),
        methods,
    })
}

/// Parses a specification section: a sequence of
/// `provides|uses interface NAME (as ALIAS)? ;`.
fn parse_spec(spec: &str) -> Result<Vec<IfaceSlot>, CompileError> {
    let toks = lex(spec)?;
    let mut slots = Vec::new();
    let mut i = 0;
    let ident = |t: &Token| -> Option<String> {
        match &t.tok {
            Tok::Ident(s) => Some(s.clone()),
            _ => None,
        }
    };
    while !matches!(toks[i].tok, Tok::Eof) {
        let kw = ident(&toks[i])
            .ok_or_else(|| CompileError::new(toks[i].pos, "expected `provides` or `uses`"))?;
        let provides = match kw.as_str() {
            "provides" => true,
            "uses" => false,
            other => {
                return Err(CompileError::new(
                    toks[i].pos,
                    format!("expected `provides` or `uses`, got `{other}`"),
                ))
            }
        };
        i += 1;
        if !toks[i].is_kw("interface") {
            return Err(CompileError::new(toks[i].pos, "expected `interface`"));
        }
        i += 1;
        let iface = ident(&toks[i])
            .ok_or_else(|| CompileError::new(toks[i].pos, "expected interface name"))?;
        i += 1;
        let alias = if toks[i].is_kw("as") {
            i += 1;
            let a = ident(&toks[i])
                .ok_or_else(|| CompileError::new(toks[i].pos, "expected alias name"))?;
            i += 1;
            a
        } else {
            iface.clone()
        };
        if !toks[i].is_punct(";") {
            return Err(CompileError::new(toks[i].pos, "expected `;`"));
        }
        i += 1;
        slots.push(IfaceSlot {
            alias,
            iface,
            provides,
        });
    }
    Ok(slots)
}

/// Parses a configuration implementation: `components` lists and wiring
/// statements.
fn parse_wiring(body: &str) -> Result<(Vec<String>, Vec<Wire>), CompileError> {
    let toks = lex(body)?;
    let mut components = Vec::new();
    let mut wires = Vec::new();
    let mut i = 0;
    let ident = |t: &Token| -> Option<String> {
        match &t.tok {
            Tok::Ident(s) => Some(s.clone()),
            _ => None,
        }
    };
    while !matches!(toks[i].tok, Tok::Eof) {
        if toks[i].is_kw("components") {
            i += 1;
            loop {
                let c = ident(&toks[i])
                    .ok_or_else(|| CompileError::new(toks[i].pos, "expected component name"))?;
                components.push(c);
                i += 1;
                if toks[i].is_punct(",") {
                    i += 1;
                    continue;
                }
                if toks[i].is_punct(";") {
                    i += 1;
                    break;
                }
                return Err(CompileError::new(toks[i].pos, "expected `,` or `;`"));
            }
            continue;
        }
        // Wiring statement: END (-> | <- | =) END ;
        let (lhs, ni) = parse_endpoint(&toks, i)?;
        i = ni;
        let op = if toks[i].is_punct("->") {
            i += 1;
            WireOp::To
        } else if toks[i].is_punct("<") && toks[i + 1].is_punct("-") {
            i += 2;
            WireOp::From
        } else if toks[i].is_punct("=") {
            i += 1;
            WireOp::Equate
        } else {
            return Err(CompileError::new(
                toks[i].pos,
                "expected `->`, `<-`, or `=`",
            ));
        };
        let (rhs, ni) = parse_endpoint(&toks, i)?;
        i = ni;
        if !toks[i].is_punct(";") {
            return Err(CompileError::new(toks[i].pos, "expected `;` after wiring"));
        }
        i += 1;
        wires.push(Wire { lhs, op, rhs });
    }
    Ok((components, wires))
}

fn parse_endpoint(toks: &[Token], mut i: usize) -> Result<(RawEndpoint, usize), CompileError> {
    let first = match &toks[i].tok {
        Tok::Ident(s) => s.clone(),
        _ => return Err(CompileError::new(toks[i].pos, "expected wiring endpoint")),
    };
    i += 1;
    if toks[i].is_punct(".") {
        i += 1;
        let iface = match &toks[i].tok {
            Tok::Ident(s) => s.clone(),
            _ => {
                return Err(CompileError::new(
                    toks[i].pos,
                    "expected interface after `.`",
                ))
            }
        };
        i += 1;
        Ok((
            RawEndpoint {
                comp: Some(first),
                iface,
            },
            i,
        ))
    } else {
        Ok((
            RawEndpoint {
                comp: None,
                iface: first,
            },
            i,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_interface_methods() {
        let def = parse_interface(
            "Timer",
            "command result_t start(uint16_t interval);
             command result_t stop();
             event result_t fired();",
        )
        .unwrap();
        assert_eq!(def.methods.len(), 3);
        assert!(!def.methods[0].is_event);
        assert!(def.methods[2].is_event);
        assert_eq!(def.methods[0].decl.params.len(), 1);
    }

    #[test]
    fn parses_spec_with_alias() {
        let slots = parse_spec(
            "provides interface StdControl;
             uses interface Timer as T0;",
        )
        .unwrap();
        assert_eq!(
            slots[0],
            IfaceSlot {
                alias: "StdControl".into(),
                iface: "StdControl".into(),
                provides: true
            }
        );
        assert_eq!(
            slots[1],
            IfaceSlot {
                alias: "T0".into(),
                iface: "Timer".into(),
                provides: false
            }
        );
    }

    #[test]
    fn parses_wiring_statements() {
        let (comps, wires) = parse_wiring(
            "components Main, BlinkM, TimerC;
             Main.StdControl -> BlinkM.StdControl;
             BlinkM.Timer -> TimerC.Timer0;
             StdControl = BlinkM.StdControl;
             TimerC.Timer0 <- BlinkM.Timer;",
        )
        .unwrap();
        assert_eq!(comps, vec!["Main", "BlinkM", "TimerC"]);
        assert_eq!(wires.len(), 4);
        assert_eq!(wires[0].op, WireOp::To);
        assert_eq!(wires[2].op, WireOp::Equate);
        assert!(wires[2].lhs.comp.is_none());
        assert_eq!(wires[3].op, WireOp::From);
    }

    #[test]
    fn main_module_injected() {
        let set = SourceSet::new();
        let parsed = parse_sources(&set).unwrap();
        assert!(parsed.modules.contains_key("Main"));
        assert_eq!(parsed.modules["Main"].slots[0].iface, "StdControl");
    }

    #[test]
    fn rejects_garbage_interface() {
        assert!(parse_interface("X", "banana result_t f();").is_err());
    }
}
