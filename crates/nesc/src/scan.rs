//! Raw-text scanner that splits a `.nc` file into its top-level
//! constructs (interfaces, modules, configurations, and header text)
//! before the real parsers run on each section.
//!
//! The scanner only needs to understand comments, string/char literals,
//! and brace nesting — everything inside a section is handed to the
//! appropriate parser verbatim.

use tcil::{CompileError, SourcePos};

/// One top-level construct of a `.nc` file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RawItem {
    /// `interface NAME { body }`
    Interface {
        /// Interface name.
        name: String,
        /// Text between the braces.
        body: String,
    },
    /// `module NAME { spec } implementation { body }`
    Module {
        /// Module name.
        name: String,
        /// Specification section text.
        spec: String,
        /// Implementation section text.
        body: String,
    },
    /// `configuration NAME { spec } implementation { body }`
    Configuration {
        /// Configuration name.
        name: String,
        /// Specification section text.
        spec: String,
        /// Implementation (wiring) section text.
        body: String,
    },
    /// Plain TCL text between constructs (shared structs, enums, consts).
    Header(String),
}

struct Scanner<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Scanner<'a> {
    fn skip_noise(&mut self) {
        loop {
            if self.pos >= self.bytes.len() {
                return;
            }
            match self.bytes[self.pos] {
                b if b.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek2() == Some(b'/') => {
                    while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                }
                b'/' if self.peek2() == Some(b'*') => {
                    self.pos += 2;
                    while self.pos + 1 < self.bytes.len()
                        && !(self.bytes[self.pos] == b'*' && self.bytes[self.pos + 1] == b'/')
                    {
                        self.pos += 1;
                    }
                    self.pos = (self.pos + 2).min(self.bytes.len());
                }
                _ => return,
            }
        }
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    /// Reads an identifier at the cursor, or `None`.
    fn ident(&mut self) -> Option<String> {
        self.skip_noise();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && (self.bytes[self.pos].is_ascii_alphanumeric() || self.bytes[self.pos] == b'_')
        {
            self.pos += 1;
        }
        if self.pos == start {
            None
        } else {
            Some(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
        }
    }

    /// Consumes a balanced `{ ... }` and returns the inner text.
    fn braced(&mut self) -> Result<String, CompileError> {
        self.skip_noise();
        if self.bytes.get(self.pos) != Some(&b'{') {
            return Err(CompileError::new(
                self.pos_of(self.pos),
                "expected `{` in component declaration",
            ));
        }
        self.pos += 1;
        let start = self.pos;
        let mut depth = 1usize;
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'/' if self.peek2() == Some(b'/') => {
                    while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                    continue;
                }
                b'/' if self.peek2() == Some(b'*') => {
                    self.pos += 2;
                    while self.pos + 1 < self.bytes.len()
                        && !(self.bytes[self.pos] == b'*' && self.bytes[self.pos + 1] == b'/')
                    {
                        self.pos += 1;
                    }
                    self.pos = (self.pos + 2).min(self.bytes.len());
                    continue;
                }
                q @ (b'"' | b'\'') => {
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] != q {
                        if self.bytes[self.pos] == b'\\' {
                            self.pos += 1;
                        }
                        self.pos += 1;
                    }
                    self.pos += 1;
                    continue;
                }
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        let inner =
                            String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
                        self.pos += 1;
                        return Ok(inner);
                    }
                }
                _ => {}
            }
            self.pos += 1;
        }
        Err(CompileError::new(
            self.pos_of(start),
            "unterminated `{` in component",
        ))
    }

    fn pos_of(&self, byte: usize) -> SourcePos {
        let mut line = 1;
        let mut col = 1;
        for &b in &self.bytes[..byte.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        SourcePos::new(line, col)
    }
}

/// Splits `text` into top-level constructs.
///
/// # Errors
///
/// Returns an error for malformed component framing (missing braces or
/// the `implementation` keyword).
pub fn scan(text: &str) -> Result<Vec<RawItem>, CompileError> {
    let mut s = Scanner {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let mut items = Vec::new();
    let mut header = String::new();
    loop {
        s.skip_noise();
        if s.pos >= s.bytes.len() {
            break;
        }
        let mark = s.pos;
        let word = s.ident();
        match word.as_deref() {
            Some("interface") => {
                flush_header(&mut header, &mut items);
                let name = s
                    .ident()
                    .ok_or_else(|| CompileError::new(s.pos_of(s.pos), "expected interface name"))?;
                let body = s.braced()?;
                items.push(RawItem::Interface { name, body });
            }
            Some(kw @ ("module" | "configuration")) => {
                flush_header(&mut header, &mut items);
                let name = s
                    .ident()
                    .ok_or_else(|| CompileError::new(s.pos_of(s.pos), "expected component name"))?;
                let spec = s.braced()?;
                let impl_kw = s.ident();
                if impl_kw.as_deref() != Some("implementation") {
                    return Err(CompileError::new(
                        s.pos_of(s.pos),
                        "expected `implementation` after component specification",
                    ));
                }
                let body = s.braced()?;
                if kw == "module" {
                    items.push(RawItem::Module { name, spec, body });
                } else {
                    items.push(RawItem::Configuration { name, spec, body });
                }
            }
            Some(_) => {
                // Part of header text: consume to the next `;` at depth 0
                // (struct/enum bodies included via brace skipping).
                let mut depth = 0usize;
                while s.pos < s.bytes.len() {
                    match s.bytes[s.pos] {
                        b'{' => depth += 1,
                        b'}' => depth = depth.saturating_sub(1),
                        b';' if depth == 0 => {
                            s.pos += 1;
                            break;
                        }
                        _ => {}
                    }
                    s.pos += 1;
                }
                header.push_str(&text[mark..s.pos]);
                header.push('\n');
            }
            None => {
                return Err(CompileError::new(
                    s.pos_of(s.pos),
                    format!("unexpected character `{}`", s.bytes[s.pos] as char),
                ));
            }
        }
    }
    flush_header(&mut header, &mut items);
    Ok(items)
}

fn flush_header(header: &mut String, items: &mut Vec<RawItem>) {
    if !header.trim().is_empty() {
        items.push(RawItem::Header(std::mem::take(header)));
    } else {
        header.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scans_interface_and_module() {
        let items = scan(
            "interface Leds { command void set(uint8_t v); }
             module LedsC { provides interface Leds; }
             implementation { command void Leds.set(uint8_t v) { } }",
        )
        .unwrap();
        assert_eq!(items.len(), 2);
        assert!(matches!(&items[0], RawItem::Interface { name, .. } if name == "Leds"));
        assert!(matches!(&items[1], RawItem::Module { name, spec, body }
                if name == "LedsC" && spec.contains("provides") && body.contains("Leds.set")));
    }

    #[test]
    fn scans_configuration() {
        let items = scan(
            "configuration Blink { } implementation { components Main, BlinkM; Main.StdControl -> BlinkM.StdControl; }",
        )
        .unwrap();
        assert!(
            matches!(&items[0], RawItem::Configuration { name, body, .. }
            if name == "Blink" && body.contains("components"))
        );
    }

    #[test]
    fn header_text_collected() {
        let items = scan(
            "enum { AM_SURGE = 17 };
             struct SurgeMsg { uint16_t reading; };
             interface I { }",
        )
        .unwrap();
        assert!(
            matches!(&items[0], RawItem::Header(t) if t.contains("AM_SURGE") && t.contains("SurgeMsg"))
        );
        assert!(matches!(&items[1], RawItem::Interface { .. }));
    }

    #[test]
    fn nested_braces_and_comments_survive() {
        let items = scan(
            "module M { } implementation {
                // a comment with a brace }
                void f() { if (1) { } }
                /* } another */
             }",
        )
        .unwrap();
        let RawItem::Module { body, .. } = &items[0] else {
            panic!()
        };
        assert!(body.contains("void f()"));
    }

    #[test]
    fn missing_implementation_is_error() {
        assert!(scan("module M { }").is_err());
    }
}
