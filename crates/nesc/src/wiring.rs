//! Component instantiation and wiring resolution.
//!
//! nesC 1.x components are singletons, so wiring is a global property: all
//! wires from every instantiated configuration are collected, configuration
//! pass-through endpoints (`A = M.A`) are resolved to module endpoints, and
//! the result is two multimaps:
//!
//! * commands: `(user module, alias)` → providers,
//! * events: `(provider module, alias)` → users.

use std::collections::{HashMap, HashSet};

use tcil::CompileError;

use crate::parse::{Parsed, RawEndpoint, WireOp};

/// A resolved module endpoint.
pub type ModEndpoint = (String, String);

/// The resolved wiring plan for one application.
#[derive(Debug, Clone, Default)]
pub struct Plan {
    /// Components in BFS instantiation order (modules and configurations).
    pub instantiation_order: Vec<String>,
    /// Modules only, in instantiation order.
    pub modules: Vec<String>,
    /// `(user module, used alias)` → provider endpoints, in wiring order.
    pub cmd_targets: HashMap<ModEndpoint, Vec<ModEndpoint>>,
    /// `(provider module, provided alias)` → user endpoints.
    pub evt_targets: HashMap<ModEndpoint, Vec<ModEndpoint>>,
}

/// Resolves the wiring of the application rooted at configuration (or
/// module) `app`.
///
/// # Errors
///
/// Unknown components, dangling pass-through endpoints, wiring between
/// different interface types, or wiring endpoints whose slot direction is
/// wrong all produce errors.
pub fn resolve(parsed: &Parsed, app: &str) -> Result<Plan, CompileError> {
    let mut plan = Plan::default();

    // --- instantiate components (BFS from the app + implicit Main) ---
    let mut queue = vec!["Main".to_string(), app.to_string()];
    let mut seen = HashSet::new();
    while let Some(name) = queue.pop() {
        if !seen.insert(name.clone()) {
            continue;
        }
        plan.instantiation_order.push(name.clone());
        if let Some(cfg) = parsed.configs.get(&name) {
            for c in &cfg.components {
                queue.push(c.clone());
            }
        } else if parsed.modules.contains_key(&name) {
            plan.modules.push(name.clone());
        } else {
            return Err(CompileError::generic(format!("unknown component `{name}`")));
        }
    }
    plan.instantiation_order.sort();
    plan.modules.sort();

    // --- collect pass-through equates: (config, alias) -> inner endpoint ---
    let mut equates: HashMap<ModEndpoint, RawEndpoint> = HashMap::new();
    for cfg_name in &plan.instantiation_order {
        let Some(cfg) = parsed.configs.get(cfg_name) else {
            continue;
        };
        for w in &cfg.wires {
            if w.op != WireOp::Equate {
                continue;
            }
            // One side is the config's own slot (bare, or prefixed with
            // the config's own name); the other is the inner endpoint.
            let own =
                |e: &RawEndpoint| e.comp.is_none() || e.comp.as_deref() == Some(cfg_name.as_str());
            let (outer, inner) = if own(&w.lhs) && !own(&w.rhs) {
                (&w.lhs, &w.rhs)
            } else if own(&w.rhs) && !own(&w.lhs) {
                (&w.rhs, &w.lhs)
            } else {
                return Err(CompileError::generic(format!(
                    "configuration `{cfg_name}`: `=` must connect an own slot to an inner endpoint"
                )));
            };
            equates.insert((cfg_name.clone(), outer.iface.clone()), inner.clone());
        }
    }

    // Resolves an endpoint to concrete module endpoints, following
    // configuration pass-throughs.
    let normalize = |cfg_name: &str, e: &RawEndpoint| -> Result<ModEndpoint, CompileError> {
        let mut comp = match &e.comp {
            Some(c) => c.clone(),
            None => cfg_name.to_string(),
        };
        let mut iface = e.iface.clone();
        let mut fuel = 32;
        loop {
            if parsed.modules.contains_key(&comp) {
                return Ok((comp, iface));
            }
            if parsed.configs.contains_key(&comp) {
                let key = (comp.clone(), iface.clone());
                match equates.get(&key) {
                    Some(inner) => {
                        comp = inner.comp.clone().ok_or_else(|| {
                            CompileError::generic(format!(
                                "configuration `{}`: nested bare endpoints are not supported",
                                key.0
                            ))
                        })?;
                        iface = inner.iface.clone();
                    }
                    None => {
                        return Err(CompileError::generic(format!(
                            "configuration `{}` does not pass through interface `{}`",
                            key.0, key.1
                        )))
                    }
                }
            } else {
                return Err(CompileError::generic(format!("unknown component `{comp}`")));
            }
            fuel -= 1;
            if fuel == 0 {
                return Err(CompileError::generic(
                    "pass-through wiring cycle".to_string(),
                ));
            }
        }
    };

    // --- resolve -> and <- wires ---
    for cfg_name in plan.instantiation_order.clone() {
        let Some(cfg) = parsed.configs.get(&cfg_name) else {
            continue;
        };
        for w in &cfg.wires {
            let (user_raw, provider_raw) = match w.op {
                WireOp::To => (&w.lhs, &w.rhs),
                WireOp::From => (&w.rhs, &w.lhs),
                WireOp::Equate => continue,
            };
            let user = normalize(&cfg_name, user_raw)?;
            let provider = normalize(&cfg_name, provider_raw)?;
            check_slot(parsed, &user, false)?;
            check_slot(parsed, &provider, true)?;
            let ui = slot_iface(parsed, &user);
            let pi = slot_iface(parsed, &provider);
            if ui != pi {
                return Err(CompileError::generic(format!(
                    "wiring type mismatch: {}.{} is `{ui}` but {}.{} is `{pi}`",
                    user.0, user.1, provider.0, provider.1
                )));
            }
            plan.cmd_targets
                .entry(user.clone())
                .or_default()
                .push(provider.clone());
            plan.evt_targets.entry(provider).or_default().push(user);
        }
    }
    Ok(plan)
}

fn check_slot(parsed: &Parsed, ep: &ModEndpoint, provides: bool) -> Result<(), CompileError> {
    let m = &parsed.modules[&ep.0];
    match m.slot(&ep.1) {
        Some(s) if s.provides == provides => Ok(()),
        Some(_) => Err(CompileError::generic(format!(
            "module `{}` interface `{}` has the wrong direction for this wire",
            ep.0, ep.1
        ))),
        None => Err(CompileError::generic(format!(
            "module `{}` has no interface `{}`",
            ep.0, ep.1
        ))),
    }
}

fn slot_iface(parsed: &Parsed, ep: &ModEndpoint) -> String {
    parsed.modules[&ep.0]
        .slot(&ep.1)
        .expect("checked")
        .iface
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_sources;
    use crate::SourceSet;

    fn sources_basic() -> SourceSet {
        let mut s = SourceSet::new();
        s.add(
            "ifaces.nc",
            "interface StdControl { command result_t init(); command result_t start(); }
             interface Leds { command void set(uint8_t v); }",
        );
        s.add(
            "LedsC.nc",
            "module LedsC { provides interface Leds; }
             implementation { command void Leds.set(uint8_t v) { __hw_write8(0xF000, v); } }",
        );
        s.add(
            "BlinkM.nc",
            "module BlinkM { provides interface StdControl; uses interface Leds; }
             implementation {
                 command result_t StdControl.init() { return SUCCESS; }
                 command result_t StdControl.start() { call Leds.set(7); return SUCCESS; }
             }",
        );
        s.add(
            "Blink.nc",
            "configuration Blink { } implementation {
                 components Main, BlinkM, LedsC;
                 Main.StdControl -> BlinkM.StdControl;
                 BlinkM.Leds -> LedsC.Leds;
             }",
        );
        s
    }

    #[test]
    fn resolves_direct_wiring() {
        let parsed = parse_sources(&sources_basic()).unwrap();
        let plan = resolve(&parsed, "Blink").unwrap();
        assert_eq!(
            plan.cmd_targets[&("Main".to_string(), "StdControl".to_string())],
            vec![("BlinkM".to_string(), "StdControl".to_string())]
        );
        assert_eq!(
            plan.cmd_targets[&("BlinkM".to_string(), "Leds".to_string())],
            vec![("LedsC".to_string(), "Leds".to_string())]
        );
    }

    #[test]
    fn resolves_passthrough() {
        let mut s = sources_basic();
        s.add(
            "LedsWrap.nc",
            "configuration LedsWrap { provides interface Leds; }
             implementation { components LedsC; Leds = LedsC.Leds; }",
        );
        s.add(
            "Blink2.nc",
            "configuration Blink2 { } implementation {
                 components Main, BlinkM, LedsWrap;
                 Main.StdControl -> BlinkM.StdControl;
                 BlinkM.Leds -> LedsWrap.Leds;
             }",
        );
        let parsed = parse_sources(&s).unwrap();
        let plan = resolve(&parsed, "Blink2").unwrap();
        assert_eq!(
            plan.cmd_targets[&("BlinkM".to_string(), "Leds".to_string())],
            vec![("LedsC".to_string(), "Leds".to_string())]
        );
    }

    #[test]
    fn type_mismatch_is_error() {
        let mut s = sources_basic();
        s.add(
            "Bad.nc",
            "configuration Bad { } implementation {
                 components Main, BlinkM, LedsC;
                 Main.StdControl -> LedsC.Leds;
             }",
        );
        let parsed = parse_sources(&s).unwrap();
        assert!(resolve(&parsed, "Bad").is_err());
    }

    #[test]
    fn unknown_component_is_error() {
        let mut s = sources_basic();
        s.add(
            "Bad2.nc",
            "configuration Bad2 { } implementation { components Nope; }",
        );
        let parsed = parse_sources(&s).unwrap();
        assert!(resolve(&parsed, "Bad2").is_err());
    }

    #[test]
    fn fanout_collects_multiple_providers() {
        let mut s = sources_basic();
        s.add(
            "OtherM.nc",
            "module OtherM { provides interface StdControl; }
             implementation {
                 command result_t StdControl.init() { return SUCCESS; }
                 command result_t StdControl.start() { return SUCCESS; }
             }",
        );
        s.add(
            "Fan.nc",
            "configuration Fan { } implementation {
                 components Main, BlinkM, OtherM, LedsC;
                 Main.StdControl -> BlinkM.StdControl;
                 Main.StdControl -> OtherM.StdControl;
                 BlinkM.Leds -> LedsC.Leds;
             }",
        );
        let parsed = parse_sources(&s).unwrap();
        let plan = resolve(&parsed, "Fan").unwrap();
        assert_eq!(
            plan.cmd_targets[&("Main".to_string(), "StdControl".to_string())].len(),
            2
        );
    }
}
