//! Surface syntax tree produced by the [`crate::parser`].
//!
//! The AST is untyped; [`crate::lower`] type-checks it into [`crate::ir`].
//! nesC-specific nodes ([`ExprKind::IfaceCall`], [`ExprKind::Post`], and the
//! `task`/`interrupt` function kinds) only appear when the parser runs with
//! [`crate::parser::Dialect::NesC`]; the nesC frontend rewrites them into
//! plain calls before lowering.

use crate::error::SourcePos;
use crate::types::IntKind;

/// A parsed translation unit (one file, or one component implementation).
#[derive(Debug, Clone, Default)]
pub struct Unit {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

/// A top-level item.
#[derive(Debug, Clone)]
pub enum Item {
    /// `struct Name { ... };`
    Struct(StructDecl),
    /// `enum { A = 1, B, ... };` — introduces integer constants.
    Enum(EnumDecl),
    /// A global variable declaration.
    Global(GlobalDecl),
    /// A function definition.
    Func(FuncDecl),
}

/// `struct Name { fields };`
#[derive(Debug, Clone)]
pub struct StructDecl {
    /// Struct tag.
    pub name: String,
    /// Field declarations.
    pub fields: Vec<VarSig>,
    /// Source position of the declaration.
    pub pos: SourcePos,
}

/// `enum { A, B = 4, ... };`
#[derive(Debug, Clone)]
pub struct EnumDecl {
    /// Enumerators and optional explicit values.
    pub variants: Vec<(String, Option<Expr>)>,
    /// Source position of the declaration.
    pub pos: SourcePos,
}

/// The declared "signature" of a variable: type expression, name, and array
/// dimensions (outermost first).
#[derive(Debug, Clone)]
pub struct VarSig {
    /// Base type plus pointer depth.
    pub ty: TypeExpr,
    /// Variable / field name.
    pub name: String,
    /// Array dimensions, e.g. `[4][2]` is `vec![4, 2]`.
    pub dims: Vec<ArrayDim>,
    /// Source position.
    pub pos: SourcePos,
}

/// An array dimension: either a literal or a named constant resolved during
/// lowering (enum constants are commonly used for buffer sizes).
#[derive(Debug, Clone)]
pub enum ArrayDim {
    /// `[16]`
    Lit(u32),
    /// `[BUF_SIZE]`
    Named(String),
}

/// A global variable declaration.
#[derive(Debug, Clone)]
pub struct GlobalDecl {
    /// Declared signature.
    pub sig: VarSig,
    /// Optional initializer.
    pub init: Option<Init>,
    /// Declared with the `norace` qualifier (nesC).
    pub norace: bool,
    /// Declared `const` — the backend places it in flash, not SRAM.
    pub is_const: bool,
}

/// An initializer.
#[derive(Debug, Clone)]
pub enum Init {
    /// A scalar expression (must be a compile-time constant for globals).
    Expr(Expr),
    /// `{ a, b, c }` for arrays and structs.
    List(Vec<Init>),
    /// A string literal initializing a `char` array.
    Str(Vec<u8>),
}

/// How a function may be invoked; mirrors the nesC execution model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FuncKind {
    /// An ordinary function.
    Normal,
    /// `task void f() { ... }` — runs from the scheduler, non-preemptive.
    Task,
    /// `interrupt(TIMER0) void f() { ... }` — an interrupt handler wired to
    /// the named M16 vector.
    Interrupt(String),
}

/// A function definition.
#[derive(Debug, Clone)]
pub struct FuncDecl {
    /// Execution-model kind.
    pub kind: FuncKind,
    /// `inline` hint (the paper's custom inliner honors these plus its own
    /// size heuristics).
    pub inline: bool,
    /// Return type.
    pub ret: TypeExpr,
    /// Function name.
    pub name: String,
    /// Parameters (array dims are rejected during lowering; C decay is not
    /// supported in declarations — use pointer types).
    pub params: Vec<VarSig>,
    /// Body.
    pub body: Block,
    /// Source position.
    pub pos: SourcePos,
}

/// A type expression: a base type plus pointer depth, e.g. `uint8_t **`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeExpr {
    /// Base type.
    pub base: BaseType,
    /// Number of `*`s.
    pub ptr_depth: u32,
}

/// A base (non-derived) type name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaseType {
    /// `void`
    Void,
    /// Any integer keyword (`uint8_t`, `bool`, `char`, `int`, ...).
    Int(IntKind),
    /// `struct Name`
    Struct(String),
}

/// A `{ ... }` block.
#[derive(Debug, Clone, Default)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
}

/// A statement.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// A local variable declaration.
    Decl {
        /// Declared signature.
        sig: VarSig,
        /// Optional scalar initializer.
        init: Option<Expr>,
    },
    /// An expression evaluated for its side effects (a call, `i++`, ...).
    Expr(Expr),
    /// `lhs op= rhs;` (`op` is `None` for plain `=`).
    Assign {
        /// Compound-assignment operator, if any.
        op: Option<BinOp>,
        /// Assignment target (must lower to a place).
        lhs: Expr,
        /// Right-hand side.
        rhs: Expr,
        /// Source position.
        pos: SourcePos,
    },
    /// `if (cond) { ... } else { ... }`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_: Block,
        /// Else branch (empty when absent).
        else_: Block,
    },
    /// `while (cond) { ... }`
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Block,
    },
    /// `do { ... } while (cond);`
    DoWhile {
        /// Loop body.
        body: Block,
        /// Loop condition.
        cond: Expr,
    },
    /// `for (init; cond; step) { ... }`
    For {
        /// Initialization statement.
        init: Option<Box<Stmt>>,
        /// Condition (absent means `true`).
        cond: Option<Expr>,
        /// Step statement.
        step: Option<Box<Stmt>>,
        /// Loop body.
        body: Block,
    },
    /// `return e;`
    Return(Option<Expr>, SourcePos),
    /// `break;`
    Break(SourcePos),
    /// `continue;`
    Continue(SourcePos),
    /// `atomic { ... }` (nesC).
    Atomic(Block),
    /// A nested block.
    Block(Block),
}

/// Binary operators at the surface level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit; lowered structurally)
    LAnd,
    /// `||` (short-circuit; lowered structurally)
    LOr,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// `-`
    Neg,
    /// `~`
    BitNot,
    /// `!`
    Not,
}

/// Which flavour of nesC cross-component invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IfaceCallKind {
    /// `call Iface.method(...)` — invoke a command on a used interface.
    Call,
    /// `signal Iface.method(...)` — invoke an event on a provided interface.
    Signal,
}

/// An expression with its source position.
#[derive(Debug, Clone)]
pub struct Expr {
    /// The expression payload.
    pub kind: ExprKind,
    /// Source position for diagnostics.
    pub pos: SourcePos,
}

impl Expr {
    /// Creates an expression at `pos`.
    pub fn new(kind: ExprKind, pos: SourcePos) -> Self {
        Expr { kind, pos }
    }
}

/// Expression payloads.
#[derive(Debug, Clone)]
pub enum ExprKind {
    /// Integer literal (also character literals).
    Int(i64),
    /// String literal.
    Str(Vec<u8>),
    /// Identifier: local, global, or enum constant.
    Ident(String),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `c ? a : b`
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Direct function call (includes the `__hw_*` / `__sleep` builtins).
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// nesC `call`/`signal` through an interface.
    IfaceCall {
        /// `call` vs `signal`.
        kind: IfaceCallKind,
        /// Interface instance name within the module.
        iface: String,
        /// Command/event name.
        method: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// nesC `post taskname()`.
    Post(String),
    /// `a[i]`
    Index(Box<Expr>, Box<Expr>),
    /// `a.f`
    Field(Box<Expr>, String),
    /// `a->f`
    Arrow(Box<Expr>, String),
    /// `*a`
    Deref(Box<Expr>),
    /// `&a`
    AddrOf(Box<Expr>),
    /// `(type) a`
    Cast(TypeExpr, Box<Expr>),
    /// `sizeof(type)`
    SizeofType(TypeExpr),
    /// `sizeof(expr)`
    SizeofExpr(Box<Expr>),
    /// `x++` / `x--` / `++x` / `--x` (only valid as a statement or `for`
    /// step; the lowering rejects value uses).
    IncDec {
        /// Target lvalue.
        target: Box<Expr>,
        /// `true` for `++`.
        inc: bool,
    },
}
