//! Local (basic-block) safety-check elimination, shared by the CCured
//! local optimizer and the backend's GCC-class optimizer.
//!
//! The paper's Figure 2 shows that GCC alone and the CCured optimizer
//! remove roughly the same, surprisingly large population of "easy"
//! checks. Both of those tools implement the same two local ideas, which
//! live here so our corresponding stages share one implementation:
//!
//! * **trivially satisfiable checks** — null checks on `&x` or string
//!   literals, constant in-range indices, whole-object fat pointers
//!   dereferenced without arithmetic;
//! * **straight-line redundancy** — an identical earlier check in the
//!   same block with no intervening write to its operands and no
//!   intervening call dominates a later one.

use crate::ir::*;
use crate::visit;

/// Removes trivially satisfiable and block-locally redundant checks from
/// every function. Returns the number of checks removed.
pub fn remove_local_checks(program: &mut Program) -> usize {
    let mut removed = 0;
    for f in &mut program.functions {
        removed += optimize_block(&mut f.body);
    }
    for f in &mut program.functions {
        visit::sweep_nops(&mut f.body);
    }
    removed
}

fn optimize_block(block: &mut Block) -> usize {
    let mut removed = 0;
    let mut seen: Vec<String> = Vec::new();
    for s in block.iter_mut() {
        match s {
            Stmt::Check(c) => {
                if check_never_fails(&c.kind) {
                    *s = Stmt::Nop;
                    removed += 1;
                    continue;
                }
                let key = format!("{:?}", c.kind);
                if seen.contains(&key) {
                    *s = Stmt::Nop;
                    removed += 1;
                } else {
                    seen.push(key);
                }
            }
            Stmt::Assign(place, _) => invalidate(&mut seen, place),
            Stmt::Call { dst, .. } | Stmt::BuiltinCall { dst, .. } => {
                seen.clear();
                if let Some(d) = dst {
                    invalidate(&mut seen, d);
                }
            }
            Stmt::If { then_, else_, .. } => {
                removed += optimize_block(then_);
                removed += optimize_block(else_);
                seen.clear();
            }
            Stmt::While { body, .. } => {
                removed += optimize_block(body);
                seen.clear();
            }
            Stmt::Atomic { body, .. } | Stmt::Block(body) => {
                removed += optimize_block(body);
                seen.clear();
            }
            _ => {}
        }
    }
    removed
}

/// Whether a check is satisfiable by construction and can be deleted.
pub fn check_never_fails(kind: &CheckKind) -> bool {
    match kind {
        CheckKind::NonNull(e) => non_null(e),
        CheckKind::IndexBound { idx, n } => match idx.as_const() {
            Some(v) => v >= 0 && (v as u64) < *n as u64,
            None => false,
        },
        CheckKind::Upper { ptr, len } | CheckKind::Bounds { ptr, len } => {
            whole_object_fat(ptr, *len)
        }
    }
}

fn non_null(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::AddrOf(_) | ExprKind::Str(_) => true,
        ExprKind::MakeFat { val, .. } => non_null(val),
        _ => false,
    }
}

/// `MakeFat { val: &obj..., end: &obj + n }` with a positive constant
/// extent, dereferenced without intervening arithmetic, is in bounds by
/// construction.
fn whole_object_fat(e: &Expr, _len: u32) -> bool {
    match &e.kind {
        ExprKind::MakeFat { val, end, .. } => {
            let val_addr = matches!(val.kind, ExprKind::AddrOf(_));
            let end_past = matches!(
                &end.kind,
                ExprKind::Binary(BinOp::PtrAdd, base, off)
                    if matches!(base.kind, ExprKind::AddrOf(_))
                        && off.as_const().map(|v| v > 0).unwrap_or(false)
            );
            val_addr && end_past
        }
        _ => false,
    }
}

fn invalidate(seen: &mut Vec<String>, place: &Place) {
    let root = match &place.base {
        PlaceBase::Local(id) => format!("Local({})", id.0),
        PlaceBase::Global(g) => format!("Global({})", g.0),
        PlaceBase::Deref(_) => {
            seen.clear();
            return;
        }
    };
    seen.retain(|k| !k.contains(&root));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{IntKind, Type};

    #[test]
    fn addr_of_is_never_null() {
        let place = Place::local(LocalId(0), Type::u8());
        assert!(check_never_fails(&CheckKind::NonNull(Expr::addr_of(place))));
        assert!(!check_never_fails(&CheckKind::NonNull(Expr::load(
            Place::local(LocalId(0), Type::thin_ptr(Type::u8()))
        ))));
    }

    #[test]
    fn const_index_in_range() {
        let idx = Expr::const_int(3, IntKind::U16);
        assert!(check_never_fails(&CheckKind::IndexBound { idx, n: 4 }));
        let idx = Expr::const_int(4, IntKind::U16);
        assert!(!check_never_fails(&CheckKind::IndexBound { idx, n: 4 }));
    }
}
