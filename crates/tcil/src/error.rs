//! Compile-time error reporting with source positions.

use std::error::Error;
use std::fmt;

/// A line/column position in a source file (1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SourcePos {
    /// 1-based line number; 0 means "unknown".
    pub line: u32,
    /// 1-based column number; 0 means "unknown".
    pub col: u32,
}

impl SourcePos {
    /// Creates a position from 1-based line and column numbers.
    pub fn new(line: u32, col: u32) -> Self {
        SourcePos { line, col }
    }

    /// The "unknown position" sentinel used for synthesized code.
    pub fn unknown() -> Self {
        SourcePos::default()
    }
}

impl fmt::Display for SourcePos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "<generated>")
        } else {
            write!(f, "{}:{}", self.line, self.col)
        }
    }
}

/// An error produced while lexing, parsing, or lowering a translation unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// Where in the source the problem was detected.
    pub pos: SourcePos,
    /// Human-readable description of the problem.
    pub message: String,
    /// Optional name of the file or component the error occurred in.
    pub unit: Option<String>,
}

impl CompileError {
    /// Creates an error at `pos` with the given message.
    pub fn new(pos: SourcePos, message: impl Into<String>) -> Self {
        CompileError {
            pos,
            message: message.into(),
            unit: None,
        }
    }

    /// Creates an error with no position information (synthesized code).
    pub fn generic(message: impl Into<String>) -> Self {
        CompileError::new(SourcePos::unknown(), message)
    }

    /// Attaches the name of the translation unit (file/component) to the
    /// error for nicer diagnostics when compiling many components.
    pub fn in_unit(mut self, unit: impl Into<String>) -> Self {
        self.unit = Some(unit.into());
        self
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.unit {
            Some(u) => write!(f, "{u}:{}: {}", self.pos, self.message),
            None => write!(f, "{}: {}", self.pos, self.message),
        }
    }
}

impl Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = CompileError::new(SourcePos::new(3, 7), "unexpected token");
        assert_eq!(e.to_string(), "3:7: unexpected token");
    }

    #[test]
    fn display_includes_unit() {
        let e = CompileError::new(SourcePos::new(1, 2), "bad type").in_unit("BlinkM");
        assert_eq!(e.to_string(), "BlinkM:1:2: bad type");
    }

    #[test]
    fn generated_position_displays_marker() {
        let e = CompileError::generic("oops");
        assert_eq!(e.to_string(), "<generated>: oops");
    }
}
