//! Constant evaluation shared by the optimizers and the backend.
//!
//! All arithmetic is evaluated exactly as the M16 target would: results
//! wrap to the operation's result kind, division respects operand
//! signedness, and comparisons return `0`/`1`.

use crate::ir::{BinOp, Expr, ExprKind, UnOp};
use crate::types::{size_of, IntKind, StructDef};
use crate::visit::walk_expr_mut;

/// Evaluates `op` on constants `a`, `b` whose common operand kind is
/// `kind`; returns `None` for division by zero.
pub fn eval_binop(op: BinOp, a: i64, b: i64, kind: IntKind) -> Option<i64> {
    let a = kind.wrap(a);
    let b = kind.wrap(b);
    let ua = a as u64 & mask(kind);
    let ub = b as u64 & mask(kind);
    Some(match op {
        BinOp::Add => kind.wrap(a.wrapping_add(b)),
        BinOp::Sub => kind.wrap(a.wrapping_sub(b)),
        BinOp::Mul => kind.wrap(a.wrapping_mul(b)),
        BinOp::Div => {
            if b == 0 {
                return None;
            }
            if kind.signed() {
                kind.wrap(a.wrapping_div(b))
            } else {
                kind.wrap((ua / ub) as i64)
            }
        }
        BinOp::Mod => {
            if b == 0 {
                return None;
            }
            if kind.signed() {
                kind.wrap(a.wrapping_rem(b))
            } else {
                kind.wrap((ua % ub) as i64)
            }
        }
        BinOp::And => kind.wrap(a & b),
        BinOp::Or => kind.wrap(a | b),
        BinOp::Xor => kind.wrap(a ^ b),
        BinOp::Shl => kind.wrap(a.wrapping_shl((ub & 31) as u32)),
        BinOp::Shr => {
            if kind.signed() {
                kind.wrap(a.wrapping_shr((ub & 31) as u32))
            } else {
                kind.wrap((ua >> (ub & 31)) as i64)
            }
        }
        BinOp::Eq => (a == b) as i64,
        BinOp::Ne => (a != b) as i64,
        BinOp::Lt => {
            if kind.signed() {
                (a < b) as i64
            } else {
                (ua < ub) as i64
            }
        }
        BinOp::Le => {
            if kind.signed() {
                (a <= b) as i64
            } else {
                (ua <= ub) as i64
            }
        }
        // Pointer arithmetic on raw constant addresses is evaluated only
        // by the backend (it knows the pointee size); not foldable here.
        BinOp::PtrAdd | BinOp::PtrSub => return None,
    })
}

fn mask(kind: IntKind) -> u64 {
    match kind.size() {
        1 => 0xFF,
        2 => 0xFFFF,
        _ => 0xFFFF_FFFF,
    }
}

/// Evaluates a unary operator on a constant of the given kind.
pub fn eval_unop(op: UnOp, a: i64, kind: IntKind) -> i64 {
    match op {
        UnOp::Neg => kind.wrap(a.wrapping_neg()),
        UnOp::BitNot => kind.wrap(!a),
        UnOp::Not => (kind.wrap(a) == 0) as i64,
    }
}

/// Folds constant sub-expressions of `e` in place, bottom-up.
///
/// `structs` is used to resolve `sizeof`; pass `resolve_sizeof = false`
/// before pointer kinds are final (fat pointers change struct sizes).
/// Returns `true` if anything changed.
pub fn fold_expr(e: &mut Expr, structs: &[StructDef], resolve_sizeof: bool) -> bool {
    let mut changed = false;
    walk_expr_mut(e, &mut |x| {
        let new: Option<i64> = match &x.kind {
            ExprKind::Binary(op, a, b) => match (a.as_const(), b.as_const()) {
                (Some(av), Some(bv)) => {
                    // Operand kind: both sides were cast to a common kind by
                    // lowering; fall back to the result kind for compares.
                    let kind =
                        a.ty.as_int()
                            .or_else(|| b.ty.as_int())
                            .unwrap_or(IntKind::U16);
                    eval_binop(*op, av, bv, kind)
                }
                _ => None,
            },
            ExprKind::Unary(op, a) => a.as_const().map(|av| {
                let kind = a.ty.as_int().unwrap_or(IntKind::U16);
                eval_unop(*op, av, kind)
            }),
            ExprKind::Cast(a) => a.as_const().and_then(|av| match x.ty.as_int() {
                Some(k) => Some(k.wrap(av)),
                // Integer-constant null to pointer cast.
                None if av == 0 && x.ty.is_ptr() => Some(0),
                None => None,
            }),
            ExprKind::SizeOf(t) if resolve_sizeof => Some(size_of(t, structs) as i64),
            _ => None,
        };
        if let Some(v) = new {
            let v = x.ty.as_int().map(|k| k.wrap(v)).unwrap_or(v);
            x.kind = ExprKind::Const(v);
            changed = true;
        }
    });
    changed
}

/// Algebraic identities that do not require both operands constant:
/// `x+0`, `x*1`, `x*0`, `x|0`, `x&0`, `x^0`, `x<<0`, `x-0`, `x/1`.
/// Returns `true` if anything changed.
pub fn simplify_identities(e: &mut Expr) -> bool {
    let mut changed = false;
    walk_expr_mut(e, &mut |x| {
        let ExprKind::Binary(op, a, b) = &x.kind else {
            return;
        };
        let (av, bv) = (a.as_const(), b.as_const());
        let replacement: Option<Expr> = match (op, av, bv) {
            (
                BinOp::Add | BinOp::Sub | BinOp::Or | BinOp::Xor | BinOp::Shl | BinOp::Shr,
                _,
                Some(0),
            ) => Some((**a).clone()),
            (BinOp::Add | BinOp::Or | BinOp::Xor, Some(0), _) => Some((**b).clone()),
            (BinOp::Mul | BinOp::Div, _, Some(1)) => Some((**a).clone()),
            (BinOp::Mul, Some(1), _) => Some((**b).clone()),
            (BinOp::Mul | BinOp::And, _, Some(0)) => {
                Some(Expr::const_int(0, x.ty.as_int().unwrap_or(IntKind::U16)))
            }
            (BinOp::Mul | BinOp::And, Some(0), _) => {
                Some(Expr::const_int(0, x.ty.as_int().unwrap_or(IntKind::U16)))
            }
            (BinOp::PtrAdd | BinOp::PtrSub, _, Some(0)) => Some((**a).clone()),
            _ => None,
        };
        if let Some(mut r) = replacement {
            // Preserve the result type (insert a cast when widths differ).
            if r.ty != x.ty {
                r = Expr::cast(r, x.ty.clone());
            }
            *x = r;
            changed = true;
        }
    });
    changed
}

/// Interprets a constant as a branch condition.
pub fn const_truth(e: &Expr) -> Option<bool> {
    e.as_const().map(|v| v != 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Expr;
    use crate::types::Type;

    #[test]
    fn unsigned_division_and_compare() {
        // 0xFF / 2 as u8 = 127; as i8 it would be (-1)/2 = 0.
        assert_eq!(eval_binop(BinOp::Div, 0xFF, 2, IntKind::U8), Some(127));
        assert_eq!(eval_binop(BinOp::Div, -1, 2, IntKind::I8), Some(0));
        assert_eq!(eval_binop(BinOp::Lt, 0xFF, 1, IntKind::U8), Some(0));
        assert_eq!(eval_binop(BinOp::Lt, -1, 1, IntKind::I8), Some(1));
    }

    #[test]
    fn division_by_zero_is_none() {
        assert_eq!(eval_binop(BinOp::Div, 1, 0, IntKind::U8), None);
        assert_eq!(eval_binop(BinOp::Mod, 1, 0, IntKind::U16), None);
    }

    #[test]
    fn wrapping_matches_width() {
        assert_eq!(eval_binop(BinOp::Add, 255, 1, IntKind::U8), Some(0));
        assert_eq!(
            eval_binop(BinOp::Mul, 300, 300, IntKind::U16),
            Some(90000 % 65536)
        );
        assert_eq!(eval_binop(BinOp::Shl, 1, 15, IntKind::I16), Some(-32768));
    }

    #[test]
    fn fold_collapses_tree() {
        let mut e = Expr::binary(
            BinOp::Add,
            Expr::const_int(2, IntKind::U16),
            Expr::binary(
                BinOp::Mul,
                Expr::const_int(3, IntKind::U16),
                Expr::const_int(4, IntKind::U16),
                Type::u16(),
            ),
            Type::u16(),
        );
        assert!(fold_expr(&mut e, &[], true));
        assert_eq!(e.as_const(), Some(14));
    }

    #[test]
    fn sizeof_folds_only_when_enabled() {
        let mut e = Expr {
            ty: Type::u16(),
            kind: ExprKind::SizeOf(Type::u16()),
        };
        assert!(!fold_expr(&mut e, &[], false));
        assert!(fold_expr(&mut e, &[], true));
        assert_eq!(e.as_const(), Some(2));
    }

    #[test]
    fn identities_simplify() {
        let mut e = Expr::binary(
            BinOp::Add,
            Expr::load(crate::ir::Place::local(crate::ir::LocalId(0), Type::u16())),
            Expr::const_int(0, IntKind::U16),
            Type::u16(),
        );
        assert!(simplify_identities(&mut e));
        assert!(matches!(e.kind, ExprKind::Load(_)));
    }

    #[test]
    fn unop_eval() {
        assert_eq!(eval_unop(UnOp::Neg, 1, IntKind::U8), 255);
        assert_eq!(eval_unop(UnOp::BitNot, 0, IntKind::U16), 0xFFFF_u16 as i64);
        assert_eq!(eval_unop(UnOp::Not, 5, IntKind::U8), 0);
        assert_eq!(eval_unop(UnOp::Not, 0, IntKind::U8), 1);
    }
}
