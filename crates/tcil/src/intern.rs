//! A tiny string pool for literal data carried by a program.
//!
//! String literals (and the error-message strings synthesized by the CCured
//! stage) are deduplicated here; the backend later decides whether each
//! string lives in SRAM or flash.

/// A handle into a [`StringPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StrId(pub u32);

/// Deduplicating pool of byte strings (NUL terminators are added by the
/// backend when the strings are placed in memory, not stored here).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StringPool {
    strings: Vec<Vec<u8>>,
}

impl StringPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        StringPool::default()
    }

    /// Interns `s`, returning the id of an equal existing entry if present.
    pub fn intern(&mut self, s: &[u8]) -> StrId {
        if let Some(i) = self.strings.iter().position(|x| x == s) {
            return StrId(i as u32);
        }
        self.strings.push(s.to_vec());
        StrId((self.strings.len() - 1) as u32)
    }

    /// Returns the bytes for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this pool.
    pub fn get(&self, id: StrId) -> &[u8] {
        &self.strings[id.0 as usize]
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterates over `(id, bytes)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (StrId, &[u8])> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (StrId(i as u32), s.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_deduplicates() {
        let mut p = StringPool::new();
        let a = p.intern(b"hello");
        let b = p.intern(b"world");
        let c = p.intern(b"hello");
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_eq!(p.len(), 2);
        assert_eq!(p.get(b), b"world");
    }

    #[test]
    fn iter_yields_in_insertion_order() {
        let mut p = StringPool::new();
        p.intern(b"a");
        p.intern(b"b");
        let v: Vec<_> = p.iter().map(|(_, s)| s.to_vec()).collect();
        assert_eq!(v, vec![b"a".to_vec(), b"b".to_vec()]);
    }
}
