//! The typed, structured intermediate representation.
//!
//! Every stage of the toolchain consumes and produces [`Program`]s:
//!
//! * the nesC frontend lowers wired components into one whole program,
//! * the CCured stage annotates pointer kinds and inserts [`Check`]
//!   statements (safety checks are *first-class statements* here, exactly
//!   so that optimizers can reason about them and the backend can count the
//!   survivors — the paper's Figure 2 methodology),
//! * cXprop rewrites and deletes statements,
//! * the backend lowers the survivors to M16 code.
//!
//! Expressions are **side-effect free** (calls are statements); control
//! flow is structured (no `goto`), which lets the abstract interpreter in
//! `cxprop` run directly over the statement tree.

use crate::intern::{StrId, StringPool};
use crate::types::{IntKind, StructDef, StructId, Type};

/// Identifies a global variable within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GlobalId(pub u32);

/// Identifies a function within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(pub u32);

/// Identifies a local variable within a [`Function`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LocalId(pub u32);

/// A *failure location identifier*: the compressed error-message token the
/// paper calls a FLID (§3.2). Every inserted check gets a unique FLID; the
/// host-side table maps it back to a human-readable message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Flid(pub u16);

/// IR binary operators. Comparisons yield `0`/`1` as `uint8_t`; signedness
/// of `Div`/`Mod`/`Shr`/`Lt`/`Le` follows the operand type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Integer addition (wraps to the result type).
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Division (signedness from operand kind).
    Div,
    /// Remainder.
    Mod,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left.
    Shl,
    /// Shift right (arithmetic if signed).
    Shr,
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Pointer + integer (scaled by pointee size at lowering time).
    PtrAdd,
    /// Pointer - integer.
    PtrSub,
}

/// IR unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Bitwise complement.
    BitNot,
    /// Logical not (yields `0`/`1`).
    Not,
}

/// A typed expression. Expressions never have side effects.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// Static type of the value.
    pub ty: Type,
    /// Payload.
    pub kind: ExprKind,
}

/// Expression payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer constant (stored sign-extended; `ty` gives the width).
    Const(i64),
    /// Address of an interned string (placed by the backend).
    Str(StrId),
    /// Read a place.
    Load(Place),
    /// Address of a place.
    AddrOf(Place),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Conversion to `ty` (integer width changes; pointer casts are
    /// representation no-ops).
    Cast(Box<Expr>),
    /// `sizeof(t)` — kept symbolic until pointer kinds are fixed, because
    /// CCured fat pointers change struct sizes.
    SizeOf(Type),
    /// Constructs a fat pointer from thin parts (inserted by the CCured
    /// stage when a fresh pointer — `&x`, a string literal — flows into a
    /// FSEQ/SEQ context). `base` is unused (`None`) for FSEQ pointers.
    MakeFat {
        /// Pointer value.
        val: Box<Expr>,
        /// Lower bound (SEQ only).
        base: Option<Box<Expr>>,
        /// Upper bound (one past the last valid byte).
        end: Box<Expr>,
    },
}

impl Expr {
    /// An integer constant of the given kind.
    pub fn const_int(v: i64, kind: IntKind) -> Expr {
        Expr {
            ty: Type::Int(kind),
            kind: ExprKind::Const(kind.wrap(v)),
        }
    }

    /// The canonical `uint8_t` truth values used by comparisons.
    pub fn bool_val(b: bool) -> Expr {
        Expr::const_int(b as i64, IntKind::U8)
    }

    /// A typed null pointer constant.
    pub fn null(ty: Type) -> Expr {
        debug_assert!(ty.is_ptr());
        Expr {
            ty,
            kind: ExprKind::Const(0),
        }
    }

    /// Reads `place`, yielding its type.
    pub fn load(place: Place) -> Expr {
        Expr {
            ty: place.ty.clone(),
            kind: ExprKind::Load(place),
        }
    }

    /// Takes the address of `place` as a thin pointer.
    pub fn addr_of(place: Place) -> Expr {
        let ty = Type::thin_ptr(place.ty.clone());
        Expr {
            ty,
            kind: ExprKind::AddrOf(place),
        }
    }

    /// Builds a binary expression with an explicit result type.
    pub fn binary(op: BinOp, a: Expr, b: Expr, ty: Type) -> Expr {
        Expr {
            ty,
            kind: ExprKind::Binary(op, Box::new(a), Box::new(b)),
        }
    }

    /// Builds a unary expression preserving the operand type.
    pub fn unary(op: UnOp, e: Expr) -> Expr {
        let ty = match op {
            UnOp::Not => Type::u8(),
            _ => e.ty.clone(),
        };
        Expr {
            ty,
            kind: ExprKind::Unary(op, Box::new(e)),
        }
    }

    /// Casts `e` to `ty`.
    pub fn cast(e: Expr, ty: Type) -> Expr {
        if e.ty == ty {
            return e;
        }
        Expr {
            ty,
            kind: ExprKind::Cast(Box::new(e)),
        }
    }

    /// Returns the constant value if this is a constant expression node.
    pub fn as_const(&self) -> Option<i64> {
        match self.kind {
            ExprKind::Const(v) => Some(v),
            _ => None,
        }
    }
}

/// The root of a [`Place`].
#[derive(Debug, Clone, PartialEq)]
pub enum PlaceBase {
    /// A local variable (or parameter / compiler temp).
    Local(LocalId),
    /// A global variable.
    Global(GlobalId),
    /// The target of a pointer-valued expression.
    Deref(Box<Expr>),
}

/// A projection step applied to a place.
#[derive(Debug, Clone, PartialEq)]
pub enum PlaceElem {
    /// Select struct field `idx` of `sid`.
    Field {
        /// Struct the field belongs to.
        sid: StructId,
        /// Field index.
        idx: u32,
    },
    /// Index into an array place.
    Index(Box<Expr>),
}

/// An lvalue: a base plus a projection path, with the resulting type cached.
#[derive(Debug, Clone, PartialEq)]
pub struct Place {
    /// Base location.
    pub base: PlaceBase,
    /// Projection path (outermost first).
    pub elems: Vec<PlaceElem>,
    /// Type of the projected location.
    pub ty: Type,
}

impl Place {
    /// A bare local place.
    pub fn local(id: LocalId, ty: Type) -> Place {
        Place {
            base: PlaceBase::Local(id),
            elems: Vec::new(),
            ty,
        }
    }

    /// A bare global place.
    pub fn global(id: GlobalId, ty: Type) -> Place {
        Place {
            base: PlaceBase::Global(id),
            elems: Vec::new(),
            ty,
        }
    }

    /// The place `*ptr`.
    ///
    /// # Panics
    ///
    /// Panics if `ptr` is not pointer-typed.
    pub fn deref(ptr: Expr) -> Place {
        let ty = match &ptr.ty {
            Type::Ptr(t, _) => (**t).clone(),
            other => panic!("deref of non-pointer type {other}"),
        };
        Place {
            base: PlaceBase::Deref(Box::new(ptr)),
            elems: Vec::new(),
            ty,
        }
    }

    /// Extends this place with a field projection.
    pub fn field(mut self, sid: StructId, idx: u32, field_ty: Type) -> Place {
        self.elems.push(PlaceElem::Field { sid, idx });
        self.ty = field_ty;
        self
    }

    /// Extends this place with an array index projection.
    pub fn index(mut self, i: Expr, elem_ty: Type) -> Place {
        self.elems.push(PlaceElem::Index(Box::new(i)));
        self.ty = elem_ty;
        self
    }
}

/// Builtin operations that talk to the machine rather than memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Builtin {
    /// `__hw_read8(addr) -> uint8_t` — read a memory-mapped device register.
    HwRead8,
    /// `__hw_read16(addr) -> uint16_t`
    HwRead16,
    /// `__hw_write8(addr, v)`
    HwWrite8,
    /// `__hw_write16(addr, v)`
    HwWrite16,
    /// `__sleep()` — sleep until an interrupt is pending.
    Sleep,
    /// `__irq_save() -> uint8_t` — read-and-clear the global IRQ enable bit.
    IrqSave,
    /// `__irq_restore(v)` — restore a saved IRQ enable bit.
    IrqRestore,
    /// `__irq_enable()`
    IrqEnable,
    /// `__irq_disable()`
    IrqDisable,
}

impl Builtin {
    /// The source-level name of the builtin.
    pub fn name(self) -> &'static str {
        match self {
            Builtin::HwRead8 => "__hw_read8",
            Builtin::HwRead16 => "__hw_read16",
            Builtin::HwWrite8 => "__hw_write8",
            Builtin::HwWrite16 => "__hw_write16",
            Builtin::Sleep => "__sleep",
            Builtin::IrqSave => "__irq_save",
            Builtin::IrqRestore => "__irq_restore",
            Builtin::IrqEnable => "__irq_enable",
            Builtin::IrqDisable => "__irq_disable",
        }
    }

    /// Looks a builtin up by source name.
    pub fn from_name(name: &str) -> Option<Builtin> {
        use Builtin::*;
        [
            HwRead8, HwRead16, HwWrite8, HwWrite16, Sleep, IrqSave, IrqRestore, IrqEnable,
            IrqDisable,
        ]
        .into_iter()
        .find(|b| b.name() == name)
    }
}

/// The kind (and operands) of an inserted dynamic safety check.
///
/// The `mcu` machine traps with the check's [`Flid`] when the condition
/// fails; an optimizer that proves the condition always holds deletes the
/// whole statement.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckKind {
    /// `ptr != NULL` (SAFE pointers).
    NonNull(Expr),
    /// `ptr != NULL && ptr.val + len <= ptr.end` (FSEQ fat pointers);
    /// `len` is the byte length of the access.
    Upper {
        /// The fat pointer being dereferenced.
        ptr: Expr,
        /// Access length in bytes.
        len: u32,
    },
    /// `ptr != NULL && ptr.base <= ptr.val && ptr.val + len <= ptr.end`
    /// (SEQ fat pointers).
    Bounds {
        /// The fat pointer being dereferenced.
        ptr: Expr,
        /// Access length in bytes.
        len: u32,
    },
    /// Array index check `idx < n` synthesized for direct array accesses
    /// whose index cannot be proven in range.
    IndexBound {
        /// Index expression (unsigned compare).
        idx: Expr,
        /// Array length in elements.
        n: u32,
    },
}

/// A dynamic safety check statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Check {
    /// What to verify.
    pub kind: CheckKind,
    /// Failure location identifier reported on trap.
    pub flid: Flid,
}

/// How an `atomic` section is realized. The cXprop concurrency analysis
/// demotes `SaveRestore` to `DisableEnable` (or removes the section
/// entirely) when it can prove the interrupt-enable state on entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AtomicStyle {
    /// Save the IRQ-enable bit, disable, run, restore (always correct).
    SaveRestore,
    /// Plain disable/enable (valid when interrupts are known enabled and
    /// the section is not nested inside another atomic section).
    DisableEnable,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `place = expr;` (also struct copies when `expr` is a struct load).
    Assign(Place, Expr),
    /// `dst = f(args);`
    Call {
        /// Where to store the return value.
        dst: Option<Place>,
        /// Callee.
        func: FuncId,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// A machine builtin.
    BuiltinCall {
        /// Where to store the result (for value-producing builtins).
        dst: Option<Place>,
        /// Which builtin.
        which: Builtin,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// `if (cond) { ... } else { ... }`
    If {
        /// Condition (non-zero = true).
        cond: Expr,
        /// Then branch.
        then_: Block,
        /// Else branch.
        else_: Block,
    },
    /// `while (cond) { ... }`
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Block,
    },
    /// Return from the current function.
    Return(Option<Expr>),
    /// Exit the innermost loop.
    Break,
    /// Continue the innermost loop.
    Continue,
    /// An `atomic` section.
    Atomic {
        /// Body statements.
        body: Block,
        /// Chosen lowering.
        style: AtomicStyle,
    },
    /// A nested scope (no semantic content; keeps lowering simple).
    Block(Block),
    /// A dynamic safety check.
    Check(Check),
    /// No operation (left behind by optimizers; swept by cleanup passes).
    Nop,
}

/// A sequence of statements.
pub type Block = Vec<Stmt>;

/// A local variable (parameter, user local, or compiler temporary).
#[derive(Debug, Clone, PartialEq)]
pub struct Local {
    /// Name (temporaries are named `__t<N>`).
    pub name: String,
    /// Type.
    pub ty: Type,
    /// True for compiler-introduced temporaries.
    pub is_temp: bool,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Mangled whole-program name (e.g. `BlinkM$Timer$fired`).
    pub name: String,
    /// Return type.
    pub ret: Type,
    /// The first `params` locals are the parameters, in order.
    pub params: u32,
    /// All locals, parameters first.
    pub locals: Vec<Local>,
    /// Body.
    pub body: Block,
    /// True for nesC tasks (run by the generated scheduler dispatcher).
    pub is_task: bool,
    /// Interrupt vector number when this is a handler.
    pub interrupt: Option<u8>,
    /// Source-level `inline` hint.
    pub inline_hint: bool,
    /// Trusted functions are skipped by the CCured instrumenter (the
    /// hardware-register helper functions of the paper's toolchain step
    /// "refactor accesses to hardware registers").
    pub trusted: bool,
}

impl Function {
    /// Creates an empty function with the given signature.
    pub fn new(name: impl Into<String>, ret: Type) -> Function {
        Function {
            name: name.into(),
            ret,
            params: 0,
            locals: Vec::new(),
            body: Vec::new(),
            is_task: false,
            interrupt: None,
            inline_hint: false,
            trusted: false,
        }
    }

    /// Adds a local and returns its id.
    pub fn add_local(&mut self, name: impl Into<String>, ty: Type, is_temp: bool) -> LocalId {
        self.locals.push(Local {
            name: name.into(),
            ty,
            is_temp,
        });
        LocalId((self.locals.len() - 1) as u32)
    }

    /// Adds a fresh compiler temporary of type `ty`.
    pub fn add_temp(&mut self, ty: Type) -> LocalId {
        let n = format!("__t{}", self.locals.len());
        self.add_local(n, ty, true)
    }

    /// Type of a local.
    pub fn local_ty(&self, id: LocalId) -> &Type {
        &self.locals[id.0 as usize].ty
    }

    /// Iterator over parameter ids.
    pub fn param_ids(&self) -> impl Iterator<Item = LocalId> {
        (0..self.params).map(LocalId)
    }
}

/// How a global variable is initialized.
#[derive(Debug, Clone, PartialEq)]
pub enum Init {
    /// Zero-initialized (C `.bss` semantics).
    Zero,
    /// A scalar constant.
    Int(i64),
    /// Aggregate initializer (arrays/structs; missing tail is zero).
    List(Vec<Init>),
    /// A string literal (for `char` arrays; padded/truncated to fit).
    Str(StrId),
}

/// A global variable.
#[derive(Debug, Clone, PartialEq)]
pub struct Global {
    /// Mangled whole-program name.
    pub name: String,
    /// Type.
    pub ty: Type,
    /// Initializer.
    pub init: Init,
    /// Declared `norace` in the source (the toolchain *suppresses* this,
    /// per §2.2, but records it for reporting).
    pub norace: bool,
    /// `const` — placed in flash (ROM) rather than SRAM.
    pub is_const: bool,
    /// Marked racy by the nesC concurrency report: accessed from both
    /// interrupt and task context with at least one unprotected access.
    pub racy: bool,
}

/// A whole program: the unit of every toolchain stage.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// Struct table (indexed by [`StructId`]).
    pub structs: Vec<StructDef>,
    /// Global table (indexed by [`GlobalId`]).
    pub globals: Vec<Global>,
    /// Function table (indexed by [`FuncId`]).
    pub functions: Vec<Function>,
    /// Interned string/byte literals.
    pub strings: StringPool,
    /// Task functions in dispatch-id order.
    pub tasks: Vec<FuncId>,
    /// Program entry point (`main`).
    pub entry: Option<FuncId>,
    /// FLID → human-readable failure message, filled by the CCured stage.
    /// The backend turns this into the image's host-side decompression
    /// table; in the verbose error modes the messages also exist as
    /// on-node string globals.
    pub flid_messages: Vec<(u16, String)>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Finds a function id by name.
    pub fn find_function(&self, name: &str) -> Option<FuncId> {
        self.functions
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// Finds a global id by name.
    pub fn find_global(&self, name: &str) -> Option<GlobalId> {
        self.globals
            .iter()
            .position(|g| g.name == name)
            .map(|i| GlobalId(i as u32))
    }

    /// Convenience accessor.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.functions[id.0 as usize]
    }

    /// Mutable convenience accessor.
    pub fn func_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.functions[id.0 as usize]
    }

    /// Convenience accessor.
    pub fn global(&self, id: GlobalId) -> &Global {
        &self.globals[id.0 as usize]
    }

    /// Counts the [`Stmt::Check`] statements in the whole program — the
    /// "checks present in the IR" metric (the backend separately counts
    /// checks that survive into machine code).
    pub fn count_checks(&self) -> usize {
        fn count(block: &Block) -> usize {
            block
                .iter()
                .map(|s| match s {
                    Stmt::Check(_) => 1,
                    Stmt::If { then_, else_, .. } => count(then_) + count(else_),
                    Stmt::While { body, .. } => count(body),
                    Stmt::Atomic { body, .. } => count(body),
                    Stmt::Block(b) => count(b),
                    _ => 0,
                })
                .sum()
        }
        self.functions.iter().map(|f| count(&f.body)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_constructors_type_correctly() {
        let c = Expr::const_int(300, IntKind::U8);
        assert_eq!(c.as_const(), Some(44)); // wrapped
        let b = Expr::bool_val(true);
        assert_eq!(b.ty, Type::u8());
        let n = Expr::null(Type::thin_ptr(Type::u8()));
        assert_eq!(n.as_const(), Some(0));
    }

    #[test]
    fn place_projections_update_type() {
        let p = Place::local(LocalId(0), Type::Array(Box::new(Type::u16()), 4));
        let p = p.index(Expr::const_int(2, IntKind::U16), Type::u16());
        assert_eq!(p.ty, Type::u16());
        assert_eq!(p.elems.len(), 1);
    }

    #[test]
    fn function_locals_and_temps() {
        let mut f = Function::new("f", Type::Void);
        let a = f.add_local("a", Type::u8(), false);
        f.params = 1;
        let t = f.add_temp(Type::u16());
        assert_eq!(f.local_ty(a), &Type::u8());
        assert!(f.locals[t.0 as usize].is_temp);
        assert_eq!(f.param_ids().count(), 1);
    }

    #[test]
    fn count_checks_walks_nested_blocks() {
        let mut p = Program::new();
        let mut f = Function::new("f", Type::Void);
        let chk = Stmt::Check(Check {
            kind: CheckKind::NonNull(Expr::null(Type::thin_ptr(Type::u8()))),
            flid: Flid(1),
        });
        f.body = vec![
            chk.clone(),
            Stmt::If {
                cond: Expr::bool_val(true),
                then_: vec![chk.clone()],
                else_: vec![Stmt::While {
                    cond: Expr::bool_val(false),
                    body: vec![chk],
                }],
            },
        ];
        p.functions.push(f);
        assert_eq!(p.count_checks(), 3);
    }

    #[test]
    fn builtin_names_round_trip() {
        for b in [
            Builtin::HwRead8,
            Builtin::HwRead16,
            Builtin::HwWrite8,
            Builtin::HwWrite16,
            Builtin::Sleep,
            Builtin::IrqSave,
            Builtin::IrqRestore,
            Builtin::IrqEnable,
            Builtin::IrqDisable,
        ] {
            assert_eq!(Builtin::from_name(b.name()), Some(b));
        }
        assert_eq!(Builtin::from_name("__bogus"), None);
    }
}
