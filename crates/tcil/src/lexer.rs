//! Hand-written lexer for the TCL dialect (with nesC keywords).

use crate::error::{CompileError, SourcePos};

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (keywords are distinguished by the parser via
    /// [`Token::is_kw`] so that nesC keywords can be identifiers in plain C
    /// mode).
    Ident(String),
    /// Integer literal (decimal, hex, or character constant).
    Int(i64),
    /// String literal (unescaped bytes, no terminator).
    Str(Vec<u8>),
    /// Punctuation / operator, e.g. `"->"`, `"<<="`.
    Punct(&'static str),
    /// End of input.
    Eof,
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token payload.
    pub tok: Tok,
    /// Position of the first character.
    pub pos: SourcePos,
}

impl Token {
    /// True if this token is exactly the identifier `kw`.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(&self.tok, Tok::Ident(s) if s == kw)
    }

    /// True if this token is exactly the punctuation `p`.
    pub fn is_punct(&self, p: &str) -> bool {
        matches!(&self.tok, Tok::Punct(q) if *q == p)
    }
}

/// All multi- and single-character punctuation, longest first so that
/// maximal-munch matching is a simple linear scan.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "&=", "|=", "^=", "(", ")", "{", "}", "[", "]", ";", ",", ".", "+", "-", "*",
    "/", "%", "&", "|", "^", "~", "!", "<", ">", "=", "?", ":",
];

/// Lexes `src` into a token vector ending with [`Tok::Eof`].
///
/// # Errors
///
/// Returns a [`CompileError`] on malformed literals, unterminated comments
/// or strings, and unexpected characters.
pub fn lex(src: &str) -> Result<Vec<Token>, CompileError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! advance {
        ($n:expr) => {{
            for k in 0..$n {
                if bytes[i + k] == b'\n' {
                    line += 1;
                    col = 1;
                } else {
                    col += 1;
                }
            }
            i += $n;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i];
        let pos = SourcePos::new(line, col);
        // Whitespace.
        if c.is_ascii_whitespace() {
            advance!(1);
            continue;
        }
        // Comments.
        if c == b'/' && i + 1 < bytes.len() {
            if bytes[i + 1] == b'/' {
                while i < bytes.len() && bytes[i] != b'\n' {
                    advance!(1);
                }
                continue;
            }
            if bytes[i + 1] == b'*' {
                advance!(2);
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(CompileError::new(pos, "unterminated block comment"));
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        advance!(2);
                        break;
                    }
                    advance!(1);
                }
                continue;
            }
        }
        // Identifiers / keywords.
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                advance!(1);
            }
            let s = std::str::from_utf8(&bytes[start..i]).expect("ascii ident");
            toks.push(Token {
                tok: Tok::Ident(s.to_string()),
                pos,
            });
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let start = i;
            let mut radix = 10;
            if c == b'0' && i + 1 < bytes.len() && (bytes[i + 1] == b'x' || bytes[i + 1] == b'X') {
                radix = 16;
                advance!(2);
            }
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric()) {
                advance!(1);
            }
            let mut text = &src[start..i];
            if radix == 16 {
                text = &text[2..];
            }
            // Allow C suffixes (u, l, ul, ...) by trimming them.
            let trimmed = text.trim_end_matches(['u', 'U', 'l', 'L']);
            let v = i64::from_str_radix(trimmed, radix)
                .map_err(|_| CompileError::new(pos, format!("invalid integer literal `{text}`")))?;
            toks.push(Token {
                tok: Tok::Int(v),
                pos,
            });
            continue;
        }
        // Character constants.
        if c == b'\'' {
            advance!(1);
            if i >= bytes.len() {
                return Err(CompileError::new(pos, "unterminated character constant"));
            }
            let v = if bytes[i] == b'\\' {
                advance!(1);
                let e = escape(bytes[i])
                    .ok_or_else(|| CompileError::new(pos, "unknown escape in char constant"))?;
                advance!(1);
                e
            } else {
                let b = bytes[i];
                advance!(1);
                b
            };
            if i >= bytes.len() || bytes[i] != b'\'' {
                return Err(CompileError::new(pos, "unterminated character constant"));
            }
            advance!(1);
            toks.push(Token {
                tok: Tok::Int(v as i64),
                pos,
            });
            continue;
        }
        // String literals.
        if c == b'"' {
            advance!(1);
            let mut out = Vec::new();
            loop {
                if i >= bytes.len() {
                    return Err(CompileError::new(pos, "unterminated string literal"));
                }
                match bytes[i] {
                    b'"' => {
                        advance!(1);
                        break;
                    }
                    b'\\' => {
                        advance!(1);
                        if i >= bytes.len() {
                            return Err(CompileError::new(pos, "unterminated string literal"));
                        }
                        let e = escape(bytes[i])
                            .ok_or_else(|| CompileError::new(pos, "unknown escape in string"))?;
                        out.push(e);
                        advance!(1);
                    }
                    b => {
                        out.push(b);
                        advance!(1);
                    }
                }
            }
            toks.push(Token {
                tok: Tok::Str(out),
                pos,
            });
            continue;
        }
        // Punctuation.
        let rest = &src[i..];
        if let Some(p) = PUNCTS.iter().find(|p| rest.starts_with(**p)) {
            advance!(p.len());
            toks.push(Token {
                tok: Tok::Punct(p),
                pos,
            });
            continue;
        }
        return Err(CompileError::new(
            pos,
            format!("unexpected character `{}`", c as char),
        ));
    }
    toks.push(Token {
        tok: Tok::Eof,
        pos: SourcePos::new(line, col),
    });
    Ok(toks)
}

fn escape(b: u8) -> Option<u8> {
    Some(match b {
        b'n' => b'\n',
        b'r' => b'\r',
        b't' => b'\t',
        b'0' => 0,
        b'\\' => b'\\',
        b'\'' => b'\'',
        b'"' => b'"',
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_idents_and_ints() {
        let t = kinds("foo 42 0x2A bar_1");
        assert_eq!(
            t,
            vec![
                Tok::Ident("foo".into()),
                Tok::Int(42),
                Tok::Int(42),
                Tok::Ident("bar_1".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_suffixed_ints() {
        assert_eq!(kinds("10u 10UL")[..2], [Tok::Int(10), Tok::Int(10)]);
    }

    #[test]
    fn maximal_munch_operators() {
        let t = kinds("a<<=b >> c->d");
        assert_eq!(
            t,
            vec![
                Tok::Ident("a".into()),
                Tok::Punct("<<="),
                Tok::Ident("b".into()),
                Tok::Punct(">>"),
                Tok::Ident("c".into()),
                Tok::Punct("->"),
                Tok::Ident("d".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let t = kinds("a // line\n /* block \n comment */ b");
        assert_eq!(
            t,
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
    }

    #[test]
    fn strings_and_escapes() {
        let t = kinds(r#""hi\n\0""#);
        assert_eq!(t[0], Tok::Str(vec![b'h', b'i', b'\n', 0]));
    }

    #[test]
    fn char_constants() {
        assert_eq!(kinds("'A' '\\n'")[..2], [Tok::Int(65), Tok::Int(10)]);
    }

    #[test]
    fn positions_track_lines() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!(toks[0].pos, SourcePos::new(1, 1));
        assert_eq!(toks[1].pos, SourcePos::new(2, 3));
    }

    #[test]
    fn error_on_bad_character() {
        assert!(lex("a $ b").is_err());
        assert!(lex("\"unterminated").is_err());
        assert!(lex("/* unterminated").is_err());
    }
}
