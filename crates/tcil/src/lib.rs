//! Tiny CIL (`tcil`): the C-dialect frontend and typed intermediate
//! representation shared by every stage of the Safe TinyOS toolchain.
//!
//! The paper's toolchain is built on CIL, a C intermediate language that
//! CCured and cXprop both operate on. `tcil` plays the same role here:
//!
//! * [`lexer`] / [`parser`] — a hand-written recursive-descent frontend for
//!   a C dialect ("TCL") with optional nesC extensions (`call`, `signal`,
//!   `post`, `task`, `atomic`, `norace`, `interrupt(VECTOR)`),
//! * [`ast`] — the surface syntax tree,
//! * [`ir`] — the typed, structured IR every analysis and the code
//!   generator consume, including first-class safety-[`ir::Check`]
//!   statements inserted by the CCured stage,
//! * [`lower`] — type checking and AST→IR lowering,
//! * [`types`] — the type system and byte-exact layout rules of the 16-bit
//!   target (no padding, 2-byte thin pointers, CCured fat pointers occupy
//!   2–3 words),
//! * [`pretty`] — a C-like pretty printer for IR programs,
//! * [`fold`] — constant-evaluation helpers shared by the optimizers,
//! * [`visit`] — IR walking utilities for writing passes.
//!
//! # Example
//!
//! ```
//! use tcil::parse_and_lower;
//!
//! let src = r#"
//!     uint16_t counter;
//!     uint16_t bump(uint16_t by) { counter += by; return counter; }
//!     void main() { bump(3); }
//! "#;
//! let program = parse_and_lower(src).expect("valid program");
//! assert_eq!(program.functions.len(), 2);
//! ```

pub mod ast;
pub mod checkopt;
pub mod fold;
pub mod intern;
pub mod ir;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod pretty;
pub mod types;
pub mod visit;

mod error;

pub use error::{CompileError, SourcePos};
pub use ir::Program;

/// Parses `src` as a plain (non-nesC) TCL translation unit and lowers it to
/// a typed [`Program`].
///
/// This is the convenience entry point used by tests and by tools that work
/// on already-flattened C code (the nesC frontend drives [`parser`] and
/// [`lower`] directly with the nesC extensions enabled).
///
/// # Errors
///
/// Returns a [`CompileError`] carrying a source position when `src` fails to
/// lex, parse, or type-check.
pub fn parse_and_lower(src: &str) -> Result<Program, CompileError> {
    let unit = parser::parse_unit(src, parser::Dialect::Plain)?;
    lower::lower_unit(&unit)
}

/// Interrupt vector names recognized in `interrupt(NAME)` declarations and
/// their M16 vector numbers. The `mcu` crate implements the matching
/// hardware semantics; keep the two tables in sync.
pub const VECTORS: &[(&str, u8)] = &[
    ("TIMER0", 0),
    ("ADC", 1),
    ("RADIO_RX", 2),
    ("RADIO_TX", 3),
    ("UART", 4),
    ("TIMER1", 5),
];

/// Looks up an interrupt vector number by source-level name.
pub fn vector_number(name: &str) -> Option<u8> {
    VECTORS.iter().find(|(n, _)| *n == name).map(|&(_, v)| v)
}
