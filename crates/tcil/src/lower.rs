//! AST → IR lowering and type checking.
//!
//! Lowering establishes the IR invariants the rest of the toolchain relies
//! on:
//!
//! * expressions are side-effect free — calls, `++`, compound assignments,
//!   short-circuit operators and ternaries are all turned into statements
//!   over compiler temporaries,
//! * `&&`/`||` keep C's short-circuit semantics (they lower to `if`
//!   chains), which matters because the CCured stage later inserts traps
//!   inside the branches,
//! * all implicit integer conversions become explicit [`ExprKind::Cast`]s,
//! * `for`/`do-while` desugar to `while`,
//! * array-typed values decay to thin pointers to their first element.
//!
//! Deliberate language restrictions (documented in `DESIGN.md`): no
//! function pointers, no casts between incompatible pointer types (this is
//! what keeps every pointer out of CCured's WILD kind), no struct-by-value
//! parameters or returns, and no `continue` inside a `for` that has a step
//! expression.

use std::collections::HashMap;

use crate::ast;
use crate::error::{CompileError, SourcePos};
use crate::ir::*;
use crate::types::{size_of, IntKind, StructDef, StructId, Type};
use crate::vector_number;

/// Lowers a parsed unit into a typed [`Program`].
///
/// # Errors
///
/// Returns the first type error, unresolved name, or unsupported construct.
pub fn lower_unit(unit: &ast::Unit) -> Result<Program, CompileError> {
    Lowerer::new().lower(unit)
}

/// Signature of a function as seen by callers.
#[derive(Debug, Clone)]
struct FuncSig {
    params: Vec<Type>,
    ret: Type,
}

struct Lowerer {
    prog: Program,
    struct_ids: HashMap<String, StructId>,
    consts: HashMap<String, i64>,
    global_ids: HashMap<String, GlobalId>,
    func_ids: HashMap<String, FuncId>,
    sigs: Vec<FuncSig>,
}

impl Lowerer {
    fn new() -> Self {
        let mut consts = HashMap::new();
        // nesC-standard predefined constants.
        consts.insert("SUCCESS".to_string(), 1);
        consts.insert("FAIL".to_string(), 0);
        consts.insert("TRUE".to_string(), 1);
        consts.insert("FALSE".to_string(), 0);
        consts.insert("NULL".to_string(), 0);
        Lowerer {
            prog: Program::new(),
            struct_ids: HashMap::new(),
            consts,
            global_ids: HashMap::new(),
            func_ids: HashMap::new(),
            sigs: Vec::new(),
        }
    }

    fn lower(mut self, unit: &ast::Unit) -> Result<Program, CompileError> {
        self.collect_structs(unit)?;
        self.collect_consts(unit)?;
        self.collect_globals_and_sigs(unit)?;
        self.check_struct_cycles()?;
        self.lower_global_inits(unit)?;
        self.lower_bodies(unit)?;
        self.prog.entry = self.prog.find_function("main");
        Ok(self.prog)
    }

    // ----- pass A: declarations -----

    fn collect_structs(&mut self, unit: &ast::Unit) -> Result<(), CompileError> {
        // Register names first so pointer fields may refer to any struct.
        for item in &unit.items {
            if let ast::Item::Struct(s) = item {
                if self.struct_ids.contains_key(&s.name) {
                    return Err(CompileError::new(
                        s.pos,
                        format!("duplicate struct `{}`", s.name),
                    ));
                }
                let id = StructId(self.prog.structs.len() as u32);
                self.struct_ids.insert(s.name.clone(), id);
                self.prog.structs.push(StructDef {
                    name: s.name.clone(),
                    fields: Vec::new(),
                });
            }
        }
        Ok(())
    }

    fn collect_consts(&mut self, unit: &ast::Unit) -> Result<(), CompileError> {
        for item in &unit.items {
            if let ast::Item::Enum(e) = item {
                let mut next = 0i64;
                for (name, val) in &e.variants {
                    let v = match val {
                        Some(expr) => self.const_eval(expr)?,
                        None => next,
                    };
                    if self.consts.insert(name.clone(), v).is_some() {
                        return Err(CompileError::new(
                            e.pos,
                            format!("duplicate constant `{name}`"),
                        ));
                    }
                    next = v + 1;
                }
            }
        }
        Ok(())
    }

    fn collect_globals_and_sigs(&mut self, unit: &ast::Unit) -> Result<(), CompileError> {
        // Struct fields need constants (array dims), so fill them here.
        for item in &unit.items {
            if let ast::Item::Struct(s) = item {
                let id = self.struct_ids[&s.name];
                let mut fields = Vec::new();
                for f in &s.fields {
                    let ty = self.resolve_sig_type(&f.ty, &f.dims, f.pos)?;
                    fields.push(crate::types::Field {
                        name: f.name.clone(),
                        ty,
                    });
                }
                self.prog.structs[id.0 as usize].fields = fields;
            }
        }
        for item in &unit.items {
            match item {
                ast::Item::Global(g) => {
                    let ty = self.resolve_sig_type(&g.sig.ty, &g.sig.dims, g.sig.pos)?;
                    if self.global_ids.contains_key(&g.sig.name) {
                        return Err(CompileError::new(
                            g.sig.pos,
                            format!("duplicate global `{}`", g.sig.name),
                        ));
                    }
                    let id = GlobalId(self.prog.globals.len() as u32);
                    self.global_ids.insert(g.sig.name.clone(), id);
                    self.prog.globals.push(Global {
                        name: g.sig.name.clone(),
                        ty,
                        init: Init::Zero,
                        norace: g.norace,
                        is_const: g.is_const,
                        racy: false,
                    });
                }
                ast::Item::Func(f) => {
                    let ret = self.resolve_type(&f.ret, f.pos)?;
                    let mut params = Vec::new();
                    for p in &f.params {
                        if !p.dims.is_empty() {
                            return Err(CompileError::new(
                                p.pos,
                                "array parameters are not supported; use a pointer",
                            ));
                        }
                        let ty = self.resolve_type(&p.ty, p.pos)?;
                        if matches!(ty, Type::Struct(_)) {
                            return Err(CompileError::new(
                                p.pos,
                                "struct-by-value parameters are not supported; use a pointer",
                            ));
                        }
                        if ty == Type::Void {
                            return Err(CompileError::new(p.pos, "void parameter"));
                        }
                        params.push(ty);
                    }
                    if matches!(ret, Type::Struct(_) | Type::Array(..)) {
                        return Err(CompileError::new(
                            f.pos,
                            "aggregate return types are not supported",
                        ));
                    }
                    if self.func_ids.contains_key(&f.name) {
                        return Err(CompileError::new(
                            f.pos,
                            format!("duplicate function `{}`", f.name),
                        ));
                    }
                    let id = FuncId(self.prog.functions.len() as u32);
                    self.func_ids.insert(f.name.clone(), id);
                    self.sigs.push(FuncSig {
                        params,
                        ret: ret.clone(),
                    });
                    let mut func = Function::new(f.name.clone(), ret);
                    func.inline_hint = f.inline;
                    match &f.kind {
                        ast::FuncKind::Task => {
                            func.is_task = true;
                            self.prog.tasks.push(id);
                        }
                        ast::FuncKind::Interrupt(v) => {
                            func.interrupt = Some(vector_number(v).ok_or_else(|| {
                                CompileError::new(f.pos, format!("unknown interrupt vector `{v}`"))
                            })?);
                        }
                        ast::FuncKind::Normal => {}
                    }
                    self.prog.functions.push(func);
                }
                _ => {}
            }
        }
        Ok(())
    }

    fn check_struct_cycles(&self) -> Result<(), CompileError> {
        // A struct containing itself by value has infinite size.
        fn visit(
            sid: StructId,
            structs: &[StructDef],
            state: &mut [u8],
        ) -> Result<(), CompileError> {
            match state[sid.0 as usize] {
                1 => {
                    return Err(CompileError::generic(format!(
                        "struct `{}` contains itself by value",
                        structs[sid.0 as usize].name
                    )))
                }
                2 => return Ok(()),
                _ => {}
            }
            state[sid.0 as usize] = 1;
            for f in &structs[sid.0 as usize].fields {
                let mut t = &f.ty;
                loop {
                    match t {
                        Type::Array(inner, _) => t = inner,
                        Type::Struct(inner) => {
                            visit(*inner, structs, state)?;
                            break;
                        }
                        _ => break,
                    }
                }
            }
            state[sid.0 as usize] = 2;
            Ok(())
        }
        let mut state = vec![0u8; self.prog.structs.len()];
        for i in 0..self.prog.structs.len() {
            visit(StructId(i as u32), &self.prog.structs, &mut state)?;
        }
        Ok(())
    }

    // ----- types -----

    fn resolve_type(&self, te: &ast::TypeExpr, pos: SourcePos) -> Result<Type, CompileError> {
        let mut ty = match &te.base {
            ast::BaseType::Void => Type::Void,
            ast::BaseType::Int(k) => Type::Int(*k),
            ast::BaseType::Struct(name) => {
                let id = self
                    .struct_ids
                    .get(name)
                    .ok_or_else(|| CompileError::new(pos, format!("unknown struct `{name}`")))?;
                Type::Struct(*id)
            }
        };
        for _ in 0..te.ptr_depth {
            ty = Type::thin_ptr(ty);
        }
        if te.ptr_depth == 0 && te.base == ast::BaseType::Void {
            return Ok(Type::Void);
        }
        Ok(ty)
    }

    fn resolve_sig_type(
        &self,
        te: &ast::TypeExpr,
        dims: &[ast::ArrayDim],
        pos: SourcePos,
    ) -> Result<Type, CompileError> {
        let mut ty = self.resolve_type(te, pos)?;
        if ty == Type::Void && !dims.is_empty() {
            return Err(CompileError::new(pos, "array of void"));
        }
        for d in dims.iter().rev() {
            let n = match d {
                ast::ArrayDim::Lit(n) => *n,
                ast::ArrayDim::Named(name) => {
                    let v = *self.consts.get(name).ok_or_else(|| {
                        CompileError::new(pos, format!("unknown constant `{name}` in array size"))
                    })?;
                    if v <= 0 {
                        return Err(CompileError::new(pos, "array dimension must be positive"));
                    }
                    v as u32
                }
            };
            ty = Type::Array(Box::new(ty), n);
        }
        Ok(ty)
    }

    // ----- constant evaluation (enum values, global inits) -----

    fn const_eval(&self, e: &ast::Expr) -> Result<i64, CompileError> {
        use ast::ExprKind as K;
        Ok(match &e.kind {
            K::Int(v) => *v,
            K::Ident(name) => *self
                .consts
                .get(name)
                .ok_or_else(|| CompileError::new(e.pos, format!("`{name}` is not a constant")))?,
            K::Unary(op, a) => {
                let v = self.const_eval(a)?;
                match op {
                    ast::UnOp::Neg => -v,
                    ast::UnOp::BitNot => !v,
                    ast::UnOp::Not => (v == 0) as i64,
                }
            }
            K::Binary(op, a, b) => {
                let x = self.const_eval(a)?;
                let y = self.const_eval(b)?;
                use ast::BinOp::*;
                match op {
                    Add => x + y,
                    Sub => x - y,
                    Mul => x * y,
                    Div => {
                        if y == 0 {
                            return Err(CompileError::new(e.pos, "division by zero in constant"));
                        }
                        x / y
                    }
                    Mod => {
                        if y == 0 {
                            return Err(CompileError::new(e.pos, "division by zero in constant"));
                        }
                        x % y
                    }
                    And => x & y,
                    Or => x | y,
                    Xor => x ^ y,
                    Shl => x << (y & 63),
                    Shr => x >> (y & 63),
                    Eq => (x == y) as i64,
                    Ne => (x != y) as i64,
                    Lt => (x < y) as i64,
                    Le => (x <= y) as i64,
                    Gt => (x > y) as i64,
                    Ge => (x >= y) as i64,
                    LAnd => ((x != 0) && (y != 0)) as i64,
                    LOr => ((x != 0) || (y != 0)) as i64,
                }
            }
            K::SizeofType(te) => {
                let ty = self.resolve_type(te, e.pos)?;
                size_of(&ty, &self.prog.structs) as i64
            }
            K::Cast(te, inner) => {
                let ty = self.resolve_type(te, e.pos)?;
                let v = self.const_eval(inner)?;
                match ty.as_int() {
                    Some(k) => k.wrap(v),
                    None => return Err(CompileError::new(e.pos, "non-integer constant cast")),
                }
            }
            _ => {
                return Err(CompileError::new(
                    e.pos,
                    "expression is not a compile-time constant",
                ))
            }
        })
    }

    fn lower_global_inits(&mut self, unit: &ast::Unit) -> Result<(), CompileError> {
        for item in &unit.items {
            let ast::Item::Global(g) = item else { continue };
            let Some(init) = &g.init else { continue };
            let gid = self.global_ids[&g.sig.name];
            let ty = self.prog.globals[gid.0 as usize].ty.clone();
            let lowered = self.lower_init(init, &ty, g.sig.pos)?;
            self.prog.globals[gid.0 as usize].init = lowered;
        }
        Ok(())
    }

    fn lower_init(
        &mut self,
        init: &ast::Init,
        ty: &Type,
        pos: SourcePos,
    ) -> Result<Init, CompileError> {
        match (init, ty) {
            (ast::Init::Expr(e), Type::Int(k)) => Ok(Init::Int(k.wrap(self.const_eval(e)?))),
            (ast::Init::Expr(e), Type::Ptr(..)) => {
                let v = self.const_eval(e)?;
                if v != 0 {
                    return Err(CompileError::new(
                        pos,
                        "pointer globals may only be initialized to NULL",
                    ));
                }
                Ok(Init::Int(0))
            }
            (ast::Init::Str(bytes), Type::Array(elem, n)) if elem.as_int().is_some() => {
                if bytes.len() + 1 > *n as usize {
                    return Err(CompileError::new(pos, "string initializer too long"));
                }
                let id = self.prog.strings.intern(bytes);
                Ok(Init::Str(id))
            }
            (ast::Init::List(items), Type::Array(elem, n)) => {
                if items.len() > *n as usize {
                    return Err(CompileError::new(pos, "too many array initializers"));
                }
                let mut out = Vec::new();
                for it in items {
                    out.push(self.lower_init(it, elem, pos)?);
                }
                Ok(Init::List(out))
            }
            (ast::Init::List(items), Type::Struct(sid)) => {
                let fields: Vec<Type> = self.prog.structs[sid.0 as usize]
                    .fields
                    .iter()
                    .map(|f| f.ty.clone())
                    .collect();
                if items.len() > fields.len() {
                    return Err(CompileError::new(pos, "too many struct initializers"));
                }
                let mut out = Vec::new();
                for (it, fty) in items.iter().zip(fields.iter()) {
                    out.push(self.lower_init(it, fty, pos)?);
                }
                Ok(Init::List(out))
            }
            _ => Err(CompileError::new(
                pos,
                "initializer shape does not match type",
            )),
        }
    }

    // ----- pass B: function bodies -----

    fn lower_bodies(&mut self, unit: &ast::Unit) -> Result<(), CompileError> {
        for item in &unit.items {
            let ast::Item::Func(f) = item else { continue };
            let fid = self.func_ids[&f.name];
            let mut fl = FuncLowerer {
                env: self,
                fid,
                func: Function::new(f.name.clone(), Type::Void),
                scopes: vec![HashMap::new()],
                loop_depth: 0,
                in_for_step: 0,
            };
            // Re-seed the function shell recorded in pass A (flags etc.).
            fl.func = fl.env.prog.functions[fid.0 as usize].clone();
            for (i, p) in f.params.iter().enumerate() {
                let ty = fl.env.sigs[fid.0 as usize].params[i].clone();
                let id = fl.func.add_local(p.name.clone(), ty, false);
                fl.scopes[0].insert(p.name.clone(), id);
            }
            fl.func.params = f.params.len() as u32;
            let mut body = Vec::new();
            fl.lower_block(&f.body, &mut body)?;
            fl.func.body = body;
            let done = fl.func;
            self.prog.functions[fid.0 as usize] = done;
        }
        Ok(())
    }
}

struct FuncLowerer<'a> {
    env: &'a mut Lowerer,
    #[allow(dead_code)]
    fid: FuncId,
    func: Function,
    scopes: Vec<HashMap<String, LocalId>>,
    loop_depth: u32,
    /// Non-zero while lowering the body of a `for` that has a step
    /// statement: `continue` is rejected there (see module docs).
    in_for_step: u32,
}

impl<'a> FuncLowerer<'a> {
    fn lookup_local(&self, name: &str) -> Option<LocalId> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    fn lower_block(&mut self, b: &ast::Block, out: &mut Block) -> Result<(), CompileError> {
        self.scopes.push(HashMap::new());
        for s in &b.stmts {
            self.lower_stmt(s, out)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn lower_stmt(&mut self, s: &ast::Stmt, out: &mut Block) -> Result<(), CompileError> {
        match s {
            ast::Stmt::Decl { sig, init } => {
                let ty = self.env.resolve_sig_type(&sig.ty, &sig.dims, sig.pos)?;
                if ty == Type::Void {
                    return Err(CompileError::new(sig.pos, "void variable"));
                }
                let id = self.func.add_local(sig.name.clone(), ty.clone(), false);
                self.scopes
                    .last_mut()
                    .expect("scope")
                    .insert(sig.name.clone(), id);
                if let Some(e) = init {
                    let v = self.lower_expr(e, out)?;
                    let v = self.coerce(v, &ty, e.pos)?;
                    out.push(Stmt::Assign(Place::local(id, ty), v));
                }
                Ok(())
            }
            ast::Stmt::Expr(e) => self.lower_expr_stmt(e, out),
            ast::Stmt::Assign { op, lhs, rhs, pos } => {
                let place = self.lower_place(lhs, out)?;
                let rv = self.lower_expr(rhs, out)?;
                let value = match op {
                    None => self.coerce(rv, &place.ty.clone(), *pos)?,
                    Some(op) => {
                        let cur = Expr::load(place.clone());
                        let combined = self.lower_binop(*op, cur, rv, *pos, out)?;
                        self.coerce(combined, &place.ty.clone(), *pos)?
                    }
                };
                out.push(Stmt::Assign(place, value));
                Ok(())
            }
            ast::Stmt::If { cond, then_, else_ } => {
                let c = self.lower_cond(cond, out)?;
                let mut tb = Vec::new();
                self.lower_block(then_, &mut tb)?;
                let mut eb = Vec::new();
                self.lower_block(else_, &mut eb)?;
                out.push(Stmt::If {
                    cond: c,
                    then_: tb,
                    else_: eb,
                });
                Ok(())
            }
            ast::Stmt::While { cond, body } => {
                // Condition side effects (from `&&` etc.) must re-run each
                // iteration; if lowering the condition produced statements,
                // restructure as `while (1) { <stmts>; if (!c) break; body }`.
                let mut cstmts = Vec::new();
                let c = self.lower_cond(cond, &mut cstmts)?;
                self.loop_depth += 1;
                let mut b = Vec::new();
                self.lower_block(body, &mut b)?;
                self.loop_depth -= 1;
                if cstmts.is_empty() {
                    out.push(Stmt::While { cond: c, body: b });
                } else {
                    let mut wb = cstmts;
                    wb.push(Stmt::If {
                        cond: c,
                        then_: Vec::new(),
                        else_: vec![Stmt::Break],
                    });
                    wb.extend(b);
                    out.push(Stmt::While {
                        cond: Expr::bool_val(true),
                        body: wb,
                    });
                }
                Ok(())
            }
            ast::Stmt::DoWhile { body, cond } => {
                // do B while (c)  ==>  while (1) { B; <c-stmts>; if (!c) break; }
                self.loop_depth += 1;
                let mut b = Vec::new();
                self.lower_block(body, &mut b)?;
                self.loop_depth -= 1;
                let mut cstmts = Vec::new();
                let c = self.lower_cond(cond, &mut cstmts)?;
                b.extend(cstmts);
                b.push(Stmt::If {
                    cond: c,
                    then_: Vec::new(),
                    else_: vec![Stmt::Break],
                });
                out.push(Stmt::While {
                    cond: Expr::bool_val(true),
                    body: b,
                });
                Ok(())
            }
            ast::Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(HashMap::new());
                if let Some(i) = init {
                    self.lower_stmt(i, out)?;
                }
                let mut cstmts = Vec::new();
                let c = match cond {
                    Some(c) => self.lower_cond(c, &mut cstmts)?,
                    None => Expr::bool_val(true),
                };
                self.loop_depth += 1;
                if step.is_some() {
                    self.in_for_step += 1;
                }
                let mut b = Vec::new();
                self.lower_block(body, &mut b)?;
                if let Some(st) = step {
                    self.lower_stmt(st, &mut b)?;
                }
                if step.is_some() {
                    self.in_for_step -= 1;
                }
                self.loop_depth -= 1;
                if cstmts.is_empty() {
                    out.push(Stmt::While { cond: c, body: b });
                } else {
                    let mut wb = cstmts;
                    wb.push(Stmt::If {
                        cond: c,
                        then_: Vec::new(),
                        else_: vec![Stmt::Break],
                    });
                    wb.extend(b);
                    out.push(Stmt::While {
                        cond: Expr::bool_val(true),
                        body: wb,
                    });
                }
                self.scopes.pop();
                Ok(())
            }
            ast::Stmt::Return(e, pos) => {
                let ret_ty = self.func.ret.clone();
                match (e, ret_ty == Type::Void) {
                    (None, true) => out.push(Stmt::Return(None)),
                    (Some(_), true) => {
                        return Err(CompileError::new(
                            *pos,
                            "returning a value from void function",
                        ))
                    }
                    (None, false) => {
                        return Err(CompileError::new(*pos, "missing return value"));
                    }
                    (Some(e), false) => {
                        let v = self.lower_expr(e, out)?;
                        let v = self.coerce(v, &ret_ty, *pos)?;
                        out.push(Stmt::Return(Some(v)));
                    }
                }
                Ok(())
            }
            ast::Stmt::Break(pos) => {
                if self.loop_depth == 0 {
                    return Err(CompileError::new(*pos, "`break` outside loop"));
                }
                out.push(Stmt::Break);
                Ok(())
            }
            ast::Stmt::Continue(pos) => {
                if self.loop_depth == 0 {
                    return Err(CompileError::new(*pos, "`continue` outside loop"));
                }
                if self.in_for_step > 0 {
                    return Err(CompileError::new(
                        *pos,
                        "`continue` inside a `for` with a step is not supported",
                    ));
                }
                out.push(Stmt::Continue);
                Ok(())
            }
            ast::Stmt::Atomic(b) => {
                let mut body = Vec::new();
                self.lower_block(b, &mut body)?;
                out.push(Stmt::Atomic {
                    body,
                    style: AtomicStyle::SaveRestore,
                });
                Ok(())
            }
            ast::Stmt::Block(b) => {
                let mut body = Vec::new();
                self.lower_block(b, &mut body)?;
                out.push(Stmt::Block(body));
                Ok(())
            }
        }
    }

    /// Lowers an expression statement: calls and `++`/`--` are effects;
    /// everything else is rejected as a useless computation.
    fn lower_expr_stmt(&mut self, e: &ast::Expr, out: &mut Block) -> Result<(), CompileError> {
        match &e.kind {
            ast::ExprKind::Call { .. } => {
                self.lower_call(e, out, false)?;
                Ok(())
            }
            ast::ExprKind::IncDec { target, inc } => {
                let place = self.lower_place(target, out)?;
                let ty = place.ty.clone();
                let one = Expr::const_int(1, IntKind::U8);
                let op = if *inc {
                    ast::BinOp::Add
                } else {
                    ast::BinOp::Sub
                };
                let combined = self.lower_binop(op, Expr::load(place.clone()), one, e.pos, out)?;
                let v = self.coerce(combined, &ty, e.pos)?;
                out.push(Stmt::Assign(place, v));
                Ok(())
            }
            ast::ExprKind::IfaceCall { .. } | ast::ExprKind::Post(_) => Err(CompileError::new(
                e.pos,
                "nesC construct survived to lowering (frontend bug)",
            )),
            _ => Err(CompileError::new(
                e.pos,
                "expression statement has no effect",
            )),
        }
    }

    /// Lowers a condition to a truth-valued expression.
    fn lower_cond(&mut self, e: &ast::Expr, out: &mut Block) -> Result<Expr, CompileError> {
        let v = self.lower_expr(e, out)?;
        Ok(self.truthy(v))
    }

    fn truthy(&mut self, e: Expr) -> Expr {
        // Comparisons and logical-not already yield 0/1.
        match &e.kind {
            ExprKind::Binary(BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le, _, _) => e,
            ExprKind::Unary(UnOp::Not, _) => e,
            _ => {
                let zero = if e.ty.is_ptr() {
                    Expr::null(e.ty.clone())
                } else {
                    Expr::const_int(0, e.ty.as_int().unwrap_or(IntKind::U16))
                };
                Expr::binary(BinOp::Ne, e, zero, Type::u8())
            }
        }
    }

    // ----- places -----

    fn lower_place(&mut self, e: &ast::Expr, out: &mut Block) -> Result<Place, CompileError> {
        use ast::ExprKind as K;
        match &e.kind {
            K::Ident(name) => {
                if let Some(id) = self.lookup_local(name) {
                    let ty = self.func.local_ty(id).clone();
                    return Ok(Place::local(id, ty));
                }
                if let Some(&gid) = self.env.global_ids.get(name) {
                    let ty = self.env.prog.globals[gid.0 as usize].ty.clone();
                    return Ok(Place::global(gid, ty));
                }
                Err(CompileError::new(
                    e.pos,
                    format!("unknown variable `{name}`"),
                ))
            }
            K::Deref(inner) => {
                let p = self.lower_expr(inner, out)?;
                if !p.ty.is_ptr() {
                    return Err(CompileError::new(e.pos, "dereference of non-pointer"));
                }
                Ok(Place::deref(p))
            }
            K::Index(base, idx) => {
                let i = self.lower_expr(idx, out)?;
                if !i.ty.is_int() {
                    return Err(CompileError::new(e.pos, "array index must be an integer"));
                }
                // Array place or pointer arithmetic?
                let base_place = self.try_lower_place(base, out)?;
                match base_place {
                    Some(p) if matches!(p.ty, Type::Array(..)) => {
                        let Type::Array(elem, _) = p.ty.clone() else {
                            unreachable!()
                        };
                        Ok(p.index(i, (*elem).clone()))
                    }
                    _ => {
                        let ptr = self.lower_expr(base, out)?;
                        let (pointee, _) = ptr
                            .ty
                            .as_ptr()
                            .map(|(t, k)| (t.clone(), k))
                            .ok_or_else(|| CompileError::new(e.pos, "indexing a non-array"))?;
                        let ty = ptr.ty.clone();
                        let adjusted = Expr::binary(BinOp::PtrAdd, ptr, i, ty);
                        let _ = pointee;
                        Ok(Place::deref(adjusted))
                    }
                }
            }
            K::Field(base, fname) => {
                let p = self.lower_place(base, out)?;
                self.project_field(p, fname, e.pos)
            }
            K::Arrow(base, fname) => {
                let ptr = self.lower_expr(base, out)?;
                if !ptr.ty.is_ptr() {
                    return Err(CompileError::new(e.pos, "`->` applied to non-pointer"));
                }
                let p = Place::deref(ptr);
                self.project_field(p, fname, e.pos)
            }
            _ => Err(CompileError::new(e.pos, "expression is not assignable")),
        }
    }

    /// Tries to lower `e` as a place without reporting an error (used to
    /// distinguish `arr[i]` on arrays from `p[i]` on pointer values).
    fn try_lower_place(
        &mut self,
        e: &ast::Expr,
        out: &mut Block,
    ) -> Result<Option<Place>, CompileError> {
        use ast::ExprKind as K;
        match &e.kind {
            K::Ident(_) | K::Field(..) | K::Index(..) | K::Arrow(..) | K::Deref(_) => {
                // These may legitimately fail if the base is a pointer
                // value; only Ident failure is a hard error handled later.
                match self.lower_place(e, out) {
                    Ok(p) => Ok(Some(p)),
                    Err(_) => Ok(None),
                }
            }
            _ => Ok(None),
        }
    }

    fn project_field(
        &mut self,
        p: Place,
        fname: &str,
        pos: SourcePos,
    ) -> Result<Place, CompileError> {
        let Type::Struct(sid) = p.ty else {
            return Err(CompileError::new(pos, "field access on non-struct"));
        };
        let def = &self.env.prog.structs[sid.0 as usize];
        let idx = def
            .field_index(fname)
            .ok_or_else(|| CompileError::new(pos, format!("no field `{fname}`")))?;
        let fty = def.fields[idx as usize].ty.clone();
        Ok(p.field(sid, idx, fty))
    }

    // ----- expressions -----

    fn lower_expr(&mut self, e: &ast::Expr, out: &mut Block) -> Result<Expr, CompileError> {
        use ast::ExprKind as K;
        match &e.kind {
            K::Int(v) => {
                // Pick the smallest natural kind that holds the literal,
                // preferring signed `int16` for small values like C.
                let k = if *v >= -32768 && *v <= 32767 {
                    IntKind::I16
                } else if *v >= 0 && *v <= 65535 {
                    IntKind::U16
                } else {
                    IntKind::I32
                };
                Ok(Expr::const_int(*v, k))
            }
            K::Str(s) => {
                let id = self.env.prog.strings.intern(s);
                Ok(Expr {
                    ty: Type::thin_ptr(Type::Int(IntKind::I8)),
                    kind: ExprKind::Str(id),
                })
            }
            K::Ident(name) => {
                if let Some(id) = self.lookup_local(name) {
                    let ty = self.func.local_ty(id).clone();
                    return Ok(self.decay(Expr::load(Place::local(id, ty))));
                }
                if let Some(&gid) = self.env.global_ids.get(name) {
                    let ty = self.env.prog.globals[gid.0 as usize].ty.clone();
                    return Ok(self.decay(Expr::load(Place::global(gid, ty))));
                }
                if let Some(&v) = self.env.consts.get(name) {
                    let k = if (0..=65535).contains(&v) && v > 32767 {
                        IntKind::U16
                    } else if (-32768..=32767).contains(&v) {
                        IntKind::I16
                    } else {
                        IntKind::I32
                    };
                    return Ok(Expr::const_int(v, k));
                }
                Err(CompileError::new(
                    e.pos,
                    format!("unknown identifier `{name}`"),
                ))
            }
            K::Unary(op, a) => {
                let v = self.lower_expr(a, out)?;
                match op {
                    ast::UnOp::Not => {
                        let t = self.truthy(v);
                        Ok(Expr::unary(UnOp::Not, t))
                    }
                    ast::UnOp::Neg => {
                        let k = v
                            .ty
                            .as_int()
                            .ok_or_else(|| CompileError::new(e.pos, "negation of non-integer"))?;
                        let k = IntKind::promote(k, IntKind::I16);
                        Ok(Expr::unary(UnOp::Neg, Expr::cast(v, Type::Int(k))))
                    }
                    ast::UnOp::BitNot => {
                        let k =
                            v.ty.as_int()
                                .ok_or_else(|| CompileError::new(e.pos, "`~` of non-integer"))?;
                        let k = IntKind::promote(k, IntKind::U16);
                        Ok(Expr::unary(UnOp::BitNot, Expr::cast(v, Type::Int(k))))
                    }
                }
            }
            K::Binary(op, a, b) => {
                if matches!(op, ast::BinOp::LAnd | ast::BinOp::LOr) {
                    return self.lower_short_circuit(*op, a, b, out);
                }
                let x = self.lower_expr(a, out)?;
                let y = self.lower_expr(b, out)?;
                self.lower_binop(*op, x, y, e.pos, out)
            }
            K::Ternary(c, a, b) => {
                let cond = self.lower_cond(c, out)?;
                // Pre-lower both arms into private blocks.
                let mut ablk = Vec::new();
                let av = self.lower_expr(a, &mut ablk)?;
                let mut bblk = Vec::new();
                let bv = self.lower_expr(b, &mut bblk)?;
                let ty = if av.ty.compat(&bv.ty) {
                    av.ty.clone()
                } else {
                    match (av.ty.as_int(), bv.ty.as_int()) {
                        (Some(ka), Some(kb)) => Type::Int(IntKind::promote(ka, kb)),
                        _ => return Err(CompileError::new(e.pos, "ternary arms disagree in type")),
                    }
                };
                let t = self.func.add_temp(ty.clone());
                let av = self.coerce(av, &ty, e.pos)?;
                let bv = self.coerce(bv, &ty, e.pos)?;
                ablk.push(Stmt::Assign(Place::local(t, ty.clone()), av));
                bblk.push(Stmt::Assign(Place::local(t, ty.clone()), bv));
                out.push(Stmt::If {
                    cond,
                    then_: ablk,
                    else_: bblk,
                });
                Ok(Expr::load(Place::local(t, ty)))
            }
            K::Call { .. } => {
                let v = self.lower_call(e, out, true)?;
                v.ok_or_else(|| CompileError::new(e.pos, "void call used as a value"))
            }
            K::Index(..) | K::Field(..) | K::Arrow(..) | K::Deref(_) => {
                let p = self.lower_place(e, out)?;
                Ok(self.decay(Expr::load(p)))
            }
            K::AddrOf(inner) => {
                let p = self.lower_place(inner, out)?;
                Ok(Expr::addr_of(p))
            }
            K::Cast(te, inner) => {
                let ty = self.env.resolve_type(te, e.pos)?;
                let v = self.lower_expr(inner, out)?;
                match (&v.ty, &ty) {
                    (Type::Int(_), Type::Int(_)) => Ok(Expr::cast(v, ty)),
                    (Type::Ptr(..), Type::Ptr(..)) if v.ty.compat(&ty) => Ok(Expr::cast(v, ty)),
                    (Type::Int(_), Type::Ptr(..)) if v.as_const() == Some(0) => Ok(Expr::null(ty)),
                    _ => Err(CompileError::new(
                        e.pos,
                        format!("unsupported cast from {} to {}", v.ty, ty),
                    )),
                }
            }
            K::SizeofType(te) => {
                let ty = self.env.resolve_type(te, e.pos)?;
                Ok(Expr {
                    ty: Type::u16(),
                    kind: ExprKind::SizeOf(ty),
                })
            }
            K::SizeofExpr(inner) => {
                // sizeof(expr) needs the *undecayed* type.
                let mut probe = Vec::new();
                let ty = match self.try_lower_place(inner, &mut probe)? {
                    Some(p) => p.ty,
                    None => self.lower_expr(inner, &mut probe)?.ty,
                };
                Ok(Expr {
                    ty: Type::u16(),
                    kind: ExprKind::SizeOf(ty),
                })
            }
            K::IncDec { .. } => Err(CompileError::new(
                e.pos,
                "`++`/`--` may only be used as a statement",
            )),
            K::IfaceCall { .. } | K::Post(_) => Err(CompileError::new(
                e.pos,
                "nesC construct survived to lowering (frontend bug)",
            )),
        }
    }

    fn lower_short_circuit(
        &mut self,
        op: ast::BinOp,
        a: &ast::Expr,
        b: &ast::Expr,
        out: &mut Block,
    ) -> Result<Expr, CompileError> {
        let t = self.func.add_temp(Type::u8());
        let av = self.lower_cond(a, out)?;
        out.push(Stmt::Assign(Place::local(t, Type::u8()), av));
        let mut inner = Vec::new();
        let bv = self.lower_cond(b, &mut inner)?;
        inner.push(Stmt::Assign(Place::local(t, Type::u8()), bv));
        let guard = Expr::load(Place::local(t, Type::u8()));
        match op {
            ast::BinOp::LAnd => out.push(Stmt::If {
                cond: guard,
                then_: inner,
                else_: Vec::new(),
            }),
            ast::BinOp::LOr => out.push(Stmt::If {
                cond: guard,
                then_: Vec::new(),
                else_: inner,
            }),
            _ => unreachable!(),
        }
        Ok(Expr::load(Place::local(t, Type::u8())))
    }

    fn lower_binop(
        &mut self,
        op: ast::BinOp,
        x: Expr,
        y: Expr,
        pos: SourcePos,
        _out: &mut Block,
    ) -> Result<Expr, CompileError> {
        use ast::BinOp as A;
        // Pointer arithmetic and comparisons.
        if x.ty.is_ptr() || y.ty.is_ptr() {
            return match op {
                A::Add if x.ty.is_ptr() && y.ty.is_int() => {
                    let ty = x.ty.clone();
                    Ok(Expr::binary(BinOp::PtrAdd, x, y, ty))
                }
                A::Add if y.ty.is_ptr() && x.ty.is_int() => {
                    let ty = y.ty.clone();
                    Ok(Expr::binary(BinOp::PtrAdd, y, x, ty))
                }
                A::Sub if x.ty.is_ptr() && y.ty.is_int() => {
                    let ty = x.ty.clone();
                    Ok(Expr::binary(BinOp::PtrSub, x, y, ty))
                }
                A::Eq | A::Ne | A::Lt | A::Le | A::Gt | A::Ge => {
                    let (x, y, op) = normalize_cmp(op, x, y);
                    if !(x.ty.compat(&y.ty) || x.as_const() == Some(0) || y.as_const() == Some(0)) {
                        return Err(CompileError::new(pos, "comparing incompatible pointers"));
                    }
                    Ok(Expr::binary(op, x, y, Type::u8()))
                }
                _ => Err(CompileError::new(pos, "invalid pointer arithmetic")),
            };
        }
        let kx =
            x.ty.as_int()
                .ok_or_else(|| CompileError::new(pos, "non-integer operand"))?;
        let ky =
            y.ty.as_int()
                .ok_or_else(|| CompileError::new(pos, "non-integer operand"))?;
        let k = IntKind::promote(kx, ky);
        let xt = Expr::cast(x, Type::Int(k));
        let yt = Expr::cast(y, Type::Int(k));
        let (irop, is_cmp) = match op {
            A::Add => (BinOp::Add, false),
            A::Sub => (BinOp::Sub, false),
            A::Mul => (BinOp::Mul, false),
            A::Div => (BinOp::Div, false),
            A::Mod => (BinOp::Mod, false),
            A::And => (BinOp::And, false),
            A::Or => (BinOp::Or, false),
            A::Xor => (BinOp::Xor, false),
            A::Shl => (BinOp::Shl, false),
            A::Shr => (BinOp::Shr, false),
            A::Eq => (BinOp::Eq, true),
            A::Ne => (BinOp::Ne, true),
            A::Lt => (BinOp::Lt, true),
            A::Le => (BinOp::Le, true),
            A::Gt | A::Ge => {
                let (xt, yt, op) = normalize_cmp(op, xt, yt);
                return Ok(Expr::binary(op, xt, yt, Type::u8()));
            }
            A::LAnd | A::LOr => unreachable!("handled by lower_short_circuit"),
        };
        let ty = if is_cmp { Type::u8() } else { Type::Int(k) };
        Ok(Expr::binary(irop, xt, yt, ty))
    }

    fn lower_call(
        &mut self,
        e: &ast::Expr,
        out: &mut Block,
        want_value: bool,
    ) -> Result<Option<Expr>, CompileError> {
        let ast::ExprKind::Call { name, args } = &e.kind else {
            unreachable!()
        };
        // Builtins.
        if let Some(b) = Builtin::from_name(name) {
            return self.lower_builtin(b, args, e.pos, out, want_value);
        }
        let fid = *self
            .env
            .func_ids
            .get(name)
            .ok_or_else(|| CompileError::new(e.pos, format!("unknown function `{name}`")))?;
        let sig = self.env.sigs[fid.0 as usize].clone();
        if args.len() != sig.params.len() {
            return Err(CompileError::new(
                e.pos,
                format!(
                    "`{name}` expects {} arguments, got {}",
                    sig.params.len(),
                    args.len()
                ),
            ));
        }
        let mut lowered = Vec::new();
        for (a, pty) in args.iter().zip(sig.params.iter()) {
            let v = self.lower_expr(a, out)?;
            lowered.push(self.coerce(v, pty, a.pos)?);
        }
        if want_value && sig.ret != Type::Void {
            let t = self.func.add_temp(sig.ret.clone());
            out.push(Stmt::Call {
                dst: Some(Place::local(t, sig.ret.clone())),
                func: fid,
                args: lowered,
            });
            Ok(Some(Expr::load(Place::local(t, sig.ret))))
        } else {
            out.push(Stmt::Call {
                dst: None,
                func: fid,
                args: lowered,
            });
            Ok(None)
        }
    }

    fn lower_builtin(
        &mut self,
        b: Builtin,
        args: &[ast::Expr],
        pos: SourcePos,
        out: &mut Block,
        want_value: bool,
    ) -> Result<Option<Expr>, CompileError> {
        let (param_tys, ret): (Vec<Type>, Type) = match b {
            Builtin::HwRead8 => (vec![Type::u16()], Type::u8()),
            Builtin::HwRead16 => (vec![Type::u16()], Type::u16()),
            Builtin::HwWrite8 => (vec![Type::u16(), Type::u8()], Type::Void),
            Builtin::HwWrite16 => (vec![Type::u16(), Type::u16()], Type::Void),
            Builtin::Sleep | Builtin::IrqEnable | Builtin::IrqDisable => (vec![], Type::Void),
            Builtin::IrqSave => (vec![], Type::u8()),
            Builtin::IrqRestore => (vec![Type::u8()], Type::Void),
        };
        if args.len() != param_tys.len() {
            return Err(CompileError::new(
                pos,
                format!("`{}` expects {} arguments", b.name(), param_tys.len()),
            ));
        }
        let mut lowered = Vec::new();
        for (a, pty) in args.iter().zip(param_tys.iter()) {
            let v = self.lower_expr(a, out)?;
            lowered.push(self.coerce(v, pty, a.pos)?);
        }
        if want_value && ret != Type::Void {
            let t = self.func.add_temp(ret.clone());
            out.push(Stmt::BuiltinCall {
                dst: Some(Place::local(t, ret.clone())),
                which: b,
                args: lowered,
            });
            Ok(Some(Expr::load(Place::local(t, ret))))
        } else if want_value {
            Err(CompileError::new(pos, "void builtin used as a value"))
        } else {
            out.push(Stmt::BuiltinCall {
                dst: None,
                which: b,
                args: lowered,
            });
            Ok(None)
        }
    }

    /// Array-to-pointer decay for value contexts.
    fn decay(&mut self, e: Expr) -> Expr {
        if let Type::Array(elem, _) = e.ty.clone() {
            if let ExprKind::Load(p) = e.kind {
                let zero = Expr::const_int(0, IntKind::U16);
                let p = p.index(zero, (*elem).clone());
                return Expr::addr_of(p);
            }
        }
        e
    }

    /// Implicit conversion of `e` to `target`.
    fn coerce(&mut self, e: Expr, target: &Type, pos: SourcePos) -> Result<Expr, CompileError> {
        if &e.ty == target {
            return Ok(e);
        }
        match (&e.ty, target) {
            (Type::Int(_), Type::Int(_)) => Ok(Expr::cast(e, target.clone())),
            (Type::Ptr(..), Type::Ptr(..)) if e.ty.compat(target) => Ok(e),
            (Type::Int(_), Type::Ptr(..)) if e.as_const() == Some(0) => {
                Ok(Expr::null(target.clone()))
            }
            (Type::Struct(a), Type::Struct(b)) if a == b => Ok(e),
            _ => Err(CompileError::new(
                pos,
                format!("cannot convert {} to {}", e.ty, target),
            )),
        }
    }
}

/// Rewrites `>`/`>=` as flipped `<`/`<=` so the IR only needs two ordered
/// comparison operators.
fn normalize_cmp(op: ast::BinOp, x: Expr, y: Expr) -> (Expr, Expr, BinOp) {
    match op {
        ast::BinOp::Eq => (x, y, BinOp::Eq),
        ast::BinOp::Ne => (x, y, BinOp::Ne),
        ast::BinOp::Lt => (x, y, BinOp::Lt),
        ast::BinOp::Le => (x, y, BinOp::Le),
        ast::BinOp::Gt => (y, x, BinOp::Lt),
        ast::BinOp::Ge => (y, x, BinOp::Le),
        _ => unreachable!("not a comparison"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_and_lower;

    #[test]
    fn lowers_simple_program() {
        let p = parse_and_lower("uint8_t x; void main() { x = 3; }").unwrap();
        assert!(p.entry.is_some());
        assert_eq!(p.globals.len(), 1);
    }

    #[test]
    fn implicit_conversions_become_casts() {
        let p = parse_and_lower("uint32_t x; void f(uint8_t a) { x = a; }").unwrap();
        let f = &p.functions[0];
        let Stmt::Assign(_, e) = &f.body[0] else {
            panic!()
        };
        assert!(matches!(e.kind, ExprKind::Cast(_)));
        assert_eq!(e.ty, Type::Int(IntKind::U32));
    }

    #[test]
    fn short_circuit_lowers_to_if() {
        let p =
            parse_and_lower("uint8_t g; uint8_t h; void f() { if (g && h) { g = 1; } }").unwrap();
        let f = &p.functions[0];
        // First the temp assignment, then the guard If, then the user If.
        assert!(f.body.len() >= 3);
        assert!(matches!(&f.body[1], Stmt::If { .. }));
    }

    #[test]
    fn ternary_produces_temp() {
        let p = parse_and_lower("uint8_t g; void f(uint8_t a) { g = a ? 1 : 2; }").unwrap();
        let f = &p.functions[0];
        assert!(f.locals.iter().any(|l| l.is_temp));
    }

    #[test]
    fn for_desugars_to_while() {
        let p = parse_and_lower(
            "uint16_t s; void f() { uint8_t i; for (i = 0; i < 10; i++) { s += i; } }",
        )
        .unwrap();
        let f = &p.functions[0];
        assert!(f.body.iter().any(|s| matches!(s, Stmt::While { .. })));
    }

    #[test]
    fn array_decay_and_indexing() {
        let p = parse_and_lower(
            "uint8_t buf[8]; uint8_t f(uint8_t * p) { return p[1]; } uint8_t g() { return f(buf); }",
        )
        .unwrap();
        let g = &p.functions[1];
        let Stmt::Call { args, .. } = &g.body[0] else {
            panic!("got {:?}", g.body[0])
        };
        assert!(matches!(args[0].kind, ExprKind::AddrOf(_)));
    }

    #[test]
    fn enum_constants_fold() {
        let p = parse_and_lower("enum { N = 4 }; uint8_t buf[N]; void main() {}").unwrap();
        assert_eq!(p.globals[0].ty, Type::Array(Box::new(Type::u8()), 4));
    }

    #[test]
    fn tasks_and_interrupts_register() {
        let p = parse_and_lower("task void t() { } interrupt(TIMER0) void h() { } void main() { }")
            .unwrap();
        assert_eq!(p.tasks.len(), 1);
        assert_eq!(p.functions[1].interrupt, Some(0));
    }

    #[test]
    fn global_initializers() {
        let p = parse_and_lower(
            "const uint16_t tab[3] = {1, 2, 3}; uint8_t x = 7; struct s { uint8_t a; uint16_t b; }; struct s v = {1, 2}; void main() {}",
        )
        .unwrap();
        assert!(matches!(&p.globals[0].init, Init::List(v) if v.len() == 3));
        assert!(matches!(p.globals[1].init, Init::Int(7)));
        assert!(matches!(&p.globals[2].init, Init::List(v) if v.len() == 2));
    }

    #[test]
    fn rejects_bad_programs() {
        // Incompatible pointer cast (would be WILD in CCured).
        assert!(
            parse_and_lower("uint8_t * p; uint16_t * q; void f() { p = (uint8_t *) q; }").is_err()
        );
        // Unknown function.
        assert!(parse_and_lower("void f() { g(); }").is_err());
        // Break outside loop.
        assert!(parse_and_lower("void f() { break; }").is_err());
        // Returning value from void.
        assert!(parse_and_lower("void f() { return 3; }").is_err());
        // Struct by value param.
        assert!(parse_and_lower("struct s { uint8_t a; }; void f(struct s v) { }").is_err());
        // Self-containing struct.
        assert!(parse_and_lower("struct s { struct s inner; }; void main() {}").is_err());
    }

    #[test]
    fn sizeof_stays_symbolic() {
        let p =
            parse_and_lower("struct m { uint8_t * p; }; uint16_t f() { return sizeof(struct m); }")
                .unwrap();
        let f = &p.functions[0];
        let Stmt::Return(Some(e)) = &f.body[0] else {
            panic!()
        };
        assert!(matches!(e.kind, ExprKind::SizeOf(_)));
    }

    #[test]
    fn builtins_lower() {
        let p = parse_and_lower(
            "void f() { uint8_t s; __hw_write8(0xF000, 1); s = __irq_save(); __irq_restore(s); __sleep(); }",
        )
        .unwrap();
        let f = &p.functions[0];
        let builtins: Vec<_> = f
            .body
            .iter()
            .filter_map(|s| match s {
                Stmt::BuiltinCall { which, .. } => Some(*which),
                _ => None,
            })
            .collect();
        assert_eq!(
            builtins,
            vec![
                Builtin::HwWrite8,
                Builtin::IrqSave,
                Builtin::IrqRestore,
                Builtin::Sleep
            ]
        );
    }

    #[test]
    fn atomic_lowering_defaults_to_save_restore() {
        let p = parse_and_lower("uint8_t g; void f() { atomic { g = 1; } }").unwrap();
        assert!(matches!(
            &p.functions[0].body[0],
            Stmt::Atomic {
                style: AtomicStyle::SaveRestore,
                ..
            }
        ));
    }

    #[test]
    fn do_while_desugars() {
        let p = parse_and_lower("void f() { uint8_t i = 0; do { i++; } while (i < 3); }").unwrap();
        assert!(p.functions[0]
            .body
            .iter()
            .any(|s| matches!(s, Stmt::While { .. })));
    }

    #[test]
    fn pointer_compare_with_null() {
        let p = parse_and_lower("uint8_t * p; uint8_t f() { return p == 0; }").unwrap();
        let f = &p.functions[0];
        let Stmt::Return(Some(e)) = &f.body[0] else {
            panic!()
        };
        assert!(matches!(e.kind, ExprKind::Binary(BinOp::Eq, _, _)));
    }
}
