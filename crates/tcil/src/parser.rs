//! Recursive-descent parser for the TCL dialect.
//!
//! The grammar is a compact C subset plus the nesC constructs the Safe
//! TinyOS toolchain needs: `task` functions, `interrupt(VECTOR)` handlers,
//! `atomic` blocks, the `norace` qualifier, and (in [`Dialect::NesC`] mode)
//! `call`/`signal` interface invocations and `post`.

use crate::ast::*;
use crate::error::{CompileError, SourcePos};
use crate::lexer::{lex, Tok, Token};
use crate::types::IntKind;

/// Which language variant to accept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dialect {
    /// Plain TCL: no `call`/`signal`/`post`.
    Plain,
    /// nesC module bodies: interface calls and task posting allowed.
    NesC,
}

/// Parses a whole translation unit.
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered.
pub fn parse_unit(src: &str, dialect: Dialect) -> Result<Unit, CompileError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        dialect,
    };
    let mut items = Vec::new();
    while !p.at_eof() {
        items.push(p.item()?);
    }
    Ok(Unit { items })
}

/// Parses a single block (used by the nesC frontend for function bodies
/// that are re-parsed after textual assembly). Mostly useful in tests.
pub fn parse_block(src: &str, dialect: Dialect) -> Result<Block, CompileError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        dialect,
    };
    p.expect_punct("{")?;
    let b = p.block_rest()?;
    if !p.at_eof() {
        return Err(p.err_here("trailing input after block"));
    }
    Ok(b)
}

const TYPE_KEYWORDS: &[(&str, IntKind)] = &[
    ("uint8_t", IntKind::U8),
    ("int8_t", IntKind::I8),
    ("uint16_t", IntKind::U16),
    ("int16_t", IntKind::I16),
    ("uint32_t", IntKind::U32),
    ("int32_t", IntKind::I32),
    ("bool", IntKind::U8),
    ("result_t", IntKind::U8),
    ("char", IntKind::I8),
    ("int", IntKind::I16),
];

struct Parser {
    toks: Vec<Token>,
    pos: usize,
    dialect: Dialect,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.toks[self.pos]
    }

    fn peek2(&self) -> &Token {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)]
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek().tok, Tok::Eof)
    }

    fn here(&self) -> SourcePos {
        self.peek().pos
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err_here(&self, msg: impl Into<String>) -> CompileError {
        CompileError::new(self.here(), msg)
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if self.peek().is_punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), CompileError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.err_here(format!("expected `{p}`, found {:?}", self.peek().tok)))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<(String, SourcePos), CompileError> {
        let pos = self.here();
        match self.bump().tok {
            Tok::Ident(s) => Ok((s, pos)),
            t => Err(CompileError::new(
                pos,
                format!("expected identifier, found {t:?}"),
            )),
        }
    }

    fn int_kind_of(&self, t: &Token) -> Option<IntKind> {
        match &t.tok {
            Tok::Ident(s) => TYPE_KEYWORDS
                .iter()
                .find(|(k, _)| k == s)
                .map(|&(_, ik)| ik),
            _ => None,
        }
    }

    /// Whether the current token begins a type expression.
    fn at_type(&self) -> bool {
        self.peek().is_kw("void")
            || self.peek().is_kw("struct")
            || self.int_kind_of(self.peek()).is_some()
    }

    fn type_expr(&mut self) -> Result<TypeExpr, CompileError> {
        let base = if self.eat_kw("void") {
            BaseType::Void
        } else if self.eat_kw("struct") {
            let (name, _) = self.expect_ident()?;
            BaseType::Struct(name)
        } else if let Some(ik) = self.int_kind_of(self.peek()) {
            self.bump();
            BaseType::Int(ik)
        } else {
            return Err(self.err_here("expected a type"));
        };
        let mut ptr_depth = 0;
        while self.eat_punct("*") {
            ptr_depth += 1;
        }
        Ok(TypeExpr { base, ptr_depth })
    }

    fn array_dims(&mut self) -> Result<Vec<ArrayDim>, CompileError> {
        let mut dims = Vec::new();
        while self.eat_punct("[") {
            let d = match &self.peek().tok {
                Tok::Int(v) => {
                    let v = *v;
                    self.bump();
                    if v <= 0 {
                        return Err(self.err_here("array dimension must be positive"));
                    }
                    ArrayDim::Lit(v as u32)
                }
                Tok::Ident(_) => {
                    let (name, _) = self.expect_ident()?;
                    ArrayDim::Named(name)
                }
                _ => return Err(self.err_here("expected array dimension")),
            };
            self.expect_punct("]")?;
            dims.push(d);
        }
        Ok(dims)
    }

    fn item(&mut self) -> Result<Item, CompileError> {
        let pos = self.here();
        // struct definition vs. struct-typed declaration
        if self.peek().is_kw("struct") && matches!(self.peek2().tok, Tok::Ident(_)) {
            // Look two tokens past "struct Name": `{` means definition.
            let third = &self.toks[(self.pos + 2).min(self.toks.len() - 1)];
            if third.is_punct("{") {
                return self.struct_decl().map(Item::Struct);
            }
        }
        if self.peek().is_kw("enum") {
            return self.enum_decl().map(Item::Enum);
        }
        // Qualifiers that may precede globals or functions.
        let mut is_const = false;
        let mut norace = false;
        let mut kind = FuncKind::Normal;
        let mut inline = false;
        loop {
            if self.eat_kw("const") {
                is_const = true;
            } else if self.eat_kw("norace") {
                norace = true;
            } else if self.eat_kw("inline") {
                inline = true;
            } else if self.dialect == Dialect::NesC
                && (self.peek().is_kw("command") || self.peek().is_kw("event"))
            {
                // `command`/`event` carry no extra meaning here: the nesC
                // frontend derives the role from the interface declaration.
                self.bump();
            } else if self.eat_kw("task") {
                kind = FuncKind::Task;
            } else if self.eat_kw("interrupt") {
                self.expect_punct("(")?;
                let (vec_name, _) = self.expect_ident()?;
                self.expect_punct(")")?;
                kind = FuncKind::Interrupt(vec_name);
            } else {
                break;
            }
        }
        let ty = self.type_expr()?;
        let (mut name, npos) = self.expect_ident()?;
        // nesC interface-member implementations: `Iface.method(...)`.
        if self.dialect == Dialect::NesC && self.peek().is_punct(".") {
            self.bump();
            let (m, _) = self.expect_ident()?;
            name = format!("{name}.{m}");
            if !self.peek().is_punct("(") {
                return Err(self.err_here("dotted names are only valid for functions"));
            }
        }
        if self.peek().is_punct("(") {
            if is_const || norace {
                return Err(CompileError::new(
                    pos,
                    "`const`/`norace` invalid on functions",
                ));
            }
            return self.func_decl(kind, inline, ty, name, npos).map(Item::Func);
        }
        if kind != FuncKind::Normal || inline {
            return Err(CompileError::new(
                pos,
                "`task`/`interrupt`/`inline` require a function",
            ));
        }
        let dims = self.array_dims()?;
        let init = if self.eat_punct("=") {
            Some(self.initializer()?)
        } else {
            None
        };
        self.expect_punct(";")?;
        Ok(Item::Global(GlobalDecl {
            sig: VarSig {
                ty,
                name,
                dims,
                pos: npos,
            },
            init,
            norace,
            is_const,
        }))
    }

    fn initializer(&mut self) -> Result<Init, CompileError> {
        if self.eat_punct("{") {
            let mut items = Vec::new();
            loop {
                if self.eat_punct("}") {
                    break;
                }
                items.push(self.initializer()?);
                if !self.eat_punct(",") {
                    self.expect_punct("}")?;
                    break;
                }
            }
            return Ok(Init::List(items));
        }
        if let Tok::Str(s) = &self.peek().tok {
            let s = s.clone();
            self.bump();
            return Ok(Init::Str(s));
        }
        Ok(Init::Expr(self.expr()?))
    }

    fn struct_decl(&mut self) -> Result<StructDecl, CompileError> {
        let pos = self.here();
        assert!(self.eat_kw("struct"));
        let (name, _) = self.expect_ident()?;
        self.expect_punct("{")?;
        let mut fields = Vec::new();
        while !self.eat_punct("}") {
            let ty = self.type_expr()?;
            let (fname, fpos) = self.expect_ident()?;
            let dims = self.array_dims()?;
            self.expect_punct(";")?;
            fields.push(VarSig {
                ty,
                name: fname,
                dims,
                pos: fpos,
            });
        }
        self.expect_punct(";")?;
        Ok(StructDecl { name, fields, pos })
    }

    fn enum_decl(&mut self) -> Result<EnumDecl, CompileError> {
        let pos = self.here();
        assert!(self.eat_kw("enum"));
        self.expect_punct("{")?;
        let mut variants = Vec::new();
        loop {
            if self.eat_punct("}") {
                break;
            }
            let (name, _) = self.expect_ident()?;
            let value = if self.eat_punct("=") {
                Some(self.expr()?)
            } else {
                None
            };
            variants.push((name, value));
            if !self.eat_punct(",") {
                self.expect_punct("}")?;
                break;
            }
        }
        self.expect_punct(";")?;
        Ok(EnumDecl { variants, pos })
    }

    fn func_decl(
        &mut self,
        kind: FuncKind,
        inline: bool,
        ret: TypeExpr,
        name: String,
        pos: SourcePos,
    ) -> Result<FuncDecl, CompileError> {
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.eat_punct(")") {
            if self.peek().is_kw("void") && self.peek2().is_punct(")") {
                self.bump();
                self.bump();
            } else {
                loop {
                    let ty = self.type_expr()?;
                    let (pname, ppos) = self.expect_ident()?;
                    params.push(VarSig {
                        ty,
                        name: pname,
                        dims: Vec::new(),
                        pos: ppos,
                    });
                    if !self.eat_punct(",") {
                        self.expect_punct(")")?;
                        break;
                    }
                }
            }
        }
        self.expect_punct("{")?;
        let body = self.block_rest()?;
        Ok(FuncDecl {
            kind,
            inline,
            ret,
            name,
            params,
            body,
            pos,
        })
    }

    /// Parses the remainder of a block after the opening `{`.
    fn block_rest(&mut self) -> Result<Block, CompileError> {
        let mut stmts = Vec::new();
        while !self.eat_punct("}") {
            if self.at_eof() {
                return Err(self.err_here("unexpected end of input in block"));
            }
            stmts.push(self.stmt()?);
        }
        Ok(Block { stmts })
    }

    fn braced_block(&mut self) -> Result<Block, CompileError> {
        self.expect_punct("{")?;
        self.block_rest()
    }

    /// A block, or a single statement wrapped in a block.
    fn block_or_stmt(&mut self) -> Result<Block, CompileError> {
        if self.peek().is_punct("{") {
            self.braced_block()
        } else {
            Ok(Block {
                stmts: vec![self.stmt()?],
            })
        }
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        if self.peek().is_punct("{") {
            return Ok(Stmt::Block(self.braced_block()?));
        }
        if self.eat_kw("if") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let then_ = self.block_or_stmt()?;
            let else_ = if self.eat_kw("else") {
                self.block_or_stmt()?
            } else {
                Block::default()
            };
            return Ok(Stmt::If { cond, then_, else_ });
        }
        if self.eat_kw("while") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let body = self.block_or_stmt()?;
            return Ok(Stmt::While { cond, body });
        }
        if self.eat_kw("do") {
            let body = self.block_or_stmt()?;
            if !self.eat_kw("while") {
                return Err(self.err_here("expected `while` after do-block"));
            }
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            return Ok(Stmt::DoWhile { body, cond });
        }
        if self.eat_kw("for") {
            self.expect_punct("(")?;
            let init = if self.peek().is_punct(";") {
                self.bump();
                None
            } else {
                let s = self.simple_stmt()?;
                self.expect_punct(";")?;
                Some(Box::new(s))
            };
            let cond = if self.peek().is_punct(";") {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect_punct(";")?;
            let step = if self.peek().is_punct(")") {
                None
            } else {
                Some(Box::new(self.simple_stmt()?))
            };
            self.expect_punct(")")?;
            let body = self.block_or_stmt()?;
            return Ok(Stmt::For {
                init,
                cond,
                step,
                body,
            });
        }
        if self.peek().is_kw("return") {
            let pos = self.here();
            self.bump();
            let e = if self.peek().is_punct(";") {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect_punct(";")?;
            return Ok(Stmt::Return(e, pos));
        }
        if self.peek().is_kw("break") {
            let pos = self.here();
            self.bump();
            self.expect_punct(";")?;
            return Ok(Stmt::Break(pos));
        }
        if self.peek().is_kw("continue") {
            let pos = self.here();
            self.bump();
            self.expect_punct(";")?;
            return Ok(Stmt::Continue(pos));
        }
        if self.eat_kw("atomic") {
            let b = self.block_or_stmt()?;
            return Ok(Stmt::Atomic(b));
        }
        let s = self.simple_stmt()?;
        self.expect_punct(";")?;
        Ok(s)
    }

    /// A declaration, assignment, or expression statement (no trailing
    /// semicolon — used directly by `for` headers).
    fn simple_stmt(&mut self) -> Result<Stmt, CompileError> {
        if self.at_type() {
            let ty = self.type_expr()?;
            let (name, pos) = self.expect_ident()?;
            let dims = self.array_dims()?;
            let init = if self.eat_punct("=") {
                Some(self.expr()?)
            } else {
                None
            };
            return Ok(Stmt::Decl {
                sig: VarSig {
                    ty,
                    name,
                    dims,
                    pos,
                },
                init,
            });
        }
        let pos = self.here();
        let lhs = self.expr()?;
        const ASSIGN_OPS: &[(&str, Option<BinOp>)] = &[
            ("=", None),
            ("+=", Some(BinOp::Add)),
            ("-=", Some(BinOp::Sub)),
            ("*=", Some(BinOp::Mul)),
            ("/=", Some(BinOp::Div)),
            ("%=", Some(BinOp::Mod)),
            ("&=", Some(BinOp::And)),
            ("|=", Some(BinOp::Or)),
            ("^=", Some(BinOp::Xor)),
            ("<<=", Some(BinOp::Shl)),
            (">>=", Some(BinOp::Shr)),
        ];
        for (p, op) in ASSIGN_OPS {
            if self.eat_punct(p) {
                let rhs = self.expr()?;
                return Ok(Stmt::Assign {
                    op: *op,
                    lhs,
                    rhs,
                    pos,
                });
            }
        }
        Ok(Stmt::Expr(lhs))
    }

    // ----- expressions (precedence climbing) -----

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.ternary()
    }

    fn ternary(&mut self) -> Result<Expr, CompileError> {
        let c = self.binary(0)?;
        if self.eat_punct("?") {
            let pos = c.pos;
            let a = self.expr()?;
            self.expect_punct(":")?;
            let b = self.ternary()?;
            return Ok(Expr::new(
                ExprKind::Ternary(Box::new(c), Box::new(a), Box::new(b)),
                pos,
            ));
        }
        Ok(c)
    }

    fn binary(&mut self, min_lvl: u8) -> Result<Expr, CompileError> {
        const LEVELS: &[&[(&str, BinOp)]] = &[
            &[("||", BinOp::LOr)],
            &[("&&", BinOp::LAnd)],
            &[("|", BinOp::Or)],
            &[("^", BinOp::Xor)],
            &[("&", BinOp::And)],
            &[("==", BinOp::Eq), ("!=", BinOp::Ne)],
            &[
                ("<=", BinOp::Le),
                (">=", BinOp::Ge),
                ("<", BinOp::Lt),
                (">", BinOp::Gt),
            ],
            &[("<<", BinOp::Shl), (">>", BinOp::Shr)],
            &[("+", BinOp::Add), ("-", BinOp::Sub)],
            &[("*", BinOp::Mul), ("/", BinOp::Div), ("%", BinOp::Mod)],
        ];
        if min_lvl as usize >= LEVELS.len() {
            return self.unary();
        }
        let mut lhs = self.binary(min_lvl + 1)?;
        'outer: loop {
            for (p, op) in LEVELS[min_lvl as usize] {
                if self.peek().is_punct(p) {
                    let pos = self.here();
                    self.bump();
                    let rhs = self.binary(min_lvl + 1)?;
                    lhs = Expr::new(ExprKind::Binary(*op, Box::new(lhs), Box::new(rhs)), pos);
                    continue 'outer;
                }
            }
            break;
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, CompileError> {
        let pos = self.here();
        if self.eat_punct("-") {
            return Ok(Expr::new(
                ExprKind::Unary(UnOp::Neg, Box::new(self.unary()?)),
                pos,
            ));
        }
        if self.eat_punct("~") {
            return Ok(Expr::new(
                ExprKind::Unary(UnOp::BitNot, Box::new(self.unary()?)),
                pos,
            ));
        }
        if self.eat_punct("!") {
            return Ok(Expr::new(
                ExprKind::Unary(UnOp::Not, Box::new(self.unary()?)),
                pos,
            ));
        }
        if self.eat_punct("*") {
            return Ok(Expr::new(ExprKind::Deref(Box::new(self.unary()?)), pos));
        }
        if self.eat_punct("&") {
            return Ok(Expr::new(ExprKind::AddrOf(Box::new(self.unary()?)), pos));
        }
        if self.eat_punct("++") {
            let t = self.unary()?;
            return Ok(Expr::new(
                ExprKind::IncDec {
                    target: Box::new(t),
                    inc: true,
                },
                pos,
            ));
        }
        if self.eat_punct("--") {
            let t = self.unary()?;
            return Ok(Expr::new(
                ExprKind::IncDec {
                    target: Box::new(t),
                    inc: false,
                },
                pos,
            ));
        }
        // Cast: "(" type ")" unary
        if self.peek().is_punct("(") {
            let next = self.peek2();
            let is_type =
                next.is_kw("void") || next.is_kw("struct") || self.int_kind_of(next).is_some();
            if is_type {
                self.bump(); // (
                let ty = self.type_expr()?;
                self.expect_punct(")")?;
                let e = self.unary()?;
                return Ok(Expr::new(ExprKind::Cast(ty, Box::new(e)), pos));
            }
        }
        if self.peek().is_kw("sizeof") {
            self.bump();
            self.expect_punct("(")?;
            let e = if self.at_type() {
                let ty = self.type_expr()?;
                Expr::new(ExprKind::SizeofType(ty), pos)
            } else {
                let inner = self.expr()?;
                Expr::new(ExprKind::SizeofExpr(Box::new(inner)), pos)
            };
            self.expect_punct(")")?;
            return Ok(e);
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.primary()?;
        loop {
            let pos = self.here();
            if self.eat_punct("[") {
                let idx = self.expr()?;
                self.expect_punct("]")?;
                e = Expr::new(ExprKind::Index(Box::new(e), Box::new(idx)), pos);
            } else if self.eat_punct(".") {
                let (f, _) = self.expect_ident()?;
                e = Expr::new(ExprKind::Field(Box::new(e), f), pos);
            } else if self.eat_punct("->") {
                let (f, _) = self.expect_ident()?;
                e = Expr::new(ExprKind::Arrow(Box::new(e), f), pos);
            } else if self.peek().is_punct("(") {
                // Calls are only valid directly on identifiers.
                if let ExprKind::Ident(name) = &e.kind {
                    let name = name.clone();
                    self.bump();
                    let args = self.call_args()?;
                    e = Expr::new(ExprKind::Call { name, args }, e.pos);
                } else {
                    return Err(self.err_here("function pointers are not supported"));
                }
            } else if self.eat_punct("++") {
                e = Expr::new(
                    ExprKind::IncDec {
                        target: Box::new(e),
                        inc: true,
                    },
                    pos,
                );
            } else if self.eat_punct("--") {
                e = Expr::new(
                    ExprKind::IncDec {
                        target: Box::new(e),
                        inc: false,
                    },
                    pos,
                );
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn call_args(&mut self) -> Result<Vec<Expr>, CompileError> {
        let mut args = Vec::new();
        if !self.eat_punct(")") {
            loop {
                args.push(self.expr()?);
                if !self.eat_punct(",") {
                    self.expect_punct(")")?;
                    break;
                }
            }
        }
        Ok(args)
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        let pos = self.here();
        if self.dialect == Dialect::NesC {
            if self.peek().is_kw("call") || self.peek().is_kw("signal") {
                let kind = if self.eat_kw("call") {
                    IfaceCallKind::Call
                } else {
                    self.bump();
                    IfaceCallKind::Signal
                };
                let (iface, _) = self.expect_ident()?;
                self.expect_punct(".")?;
                let (method, _) = self.expect_ident()?;
                self.expect_punct("(")?;
                let args = self.call_args()?;
                return Ok(Expr::new(
                    ExprKind::IfaceCall {
                        kind,
                        iface,
                        method,
                        args,
                    },
                    pos,
                ));
            }
            if self.eat_kw("post") {
                let (task, _) = self.expect_ident()?;
                self.expect_punct("(")?;
                self.expect_punct(")")?;
                return Ok(Expr::new(ExprKind::Post(task), pos));
            }
        }
        match self.bump().tok {
            Tok::Int(v) => Ok(Expr::new(ExprKind::Int(v), pos)),
            Tok::Str(s) => Ok(Expr::new(ExprKind::Str(s), pos)),
            Tok::Ident(s) => Ok(Expr::new(ExprKind::Ident(s), pos)),
            Tok::Punct("(") => {
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            t => Err(CompileError::new(
                pos,
                format!("expected expression, found {t:?}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(src: &str) -> Unit {
        parse_unit(src, Dialect::Plain).unwrap()
    }

    #[test]
    fn parses_globals_and_functions() {
        let u = unit("uint8_t x = 3; const uint16_t tab[4] = {1,2,3,4}; void f(void) { x = 1; }");
        assert_eq!(u.items.len(), 3);
        assert!(matches!(&u.items[0], Item::Global(g) if g.sig.name == "x"));
        assert!(matches!(&u.items[1], Item::Global(g) if g.is_const && g.sig.dims.len() == 1));
        assert!(matches!(&u.items[2], Item::Func(f) if f.name == "f" && f.params.is_empty()));
    }

    #[test]
    fn parses_struct_and_enum() {
        let u = unit("struct msg { uint8_t len; uint8_t data[8]; }; enum { A, B = 5, C };");
        assert!(matches!(&u.items[0], Item::Struct(s) if s.fields.len() == 2));
        assert!(matches!(&u.items[1], Item::Enum(e) if e.variants.len() == 3));
    }

    #[test]
    fn struct_typed_global_not_confused_with_definition() {
        let u = unit("struct msg { uint8_t len; }; struct msg m;");
        assert!(matches!(&u.items[1], Item::Global(g) if g.sig.name == "m"));
    }

    #[test]
    fn parses_control_flow() {
        let u = unit(
            "void f(uint8_t n) {
                uint8_t i;
                for (i = 0; i < n; i++) { if (i == 3) break; else continue; }
                while (n) { n--; }
                do { n++; } while (n < 3);
            }",
        );
        let Item::Func(f) = &u.items[0] else { panic!() };
        assert_eq!(f.body.stmts.len(), 4);
    }

    #[test]
    fn parses_task_interrupt_atomic() {
        let u = unit(
            "task void work() { atomic { } }
             interrupt(TIMER0) void tick() { }",
        );
        assert!(matches!(&u.items[0], Item::Func(f) if f.kind == FuncKind::Task));
        assert!(
            matches!(&u.items[1], Item::Func(f) if f.kind == FuncKind::Interrupt("TIMER0".into()))
        );
    }

    #[test]
    fn precedence_binds_correctly() {
        let u = unit("uint16_t x = 1 + 2 * 3;");
        let Item::Global(g) = &u.items[0] else {
            panic!()
        };
        let Some(Init::Expr(e)) = &g.init else {
            panic!()
        };
        // (1 + (2 * 3))
        let ExprKind::Binary(BinOp::Add, _, rhs) = &e.kind else {
            panic!("got {e:?}")
        };
        assert!(matches!(&rhs.kind, ExprKind::Binary(BinOp::Mul, _, _)));
    }

    #[test]
    fn casts_and_sizeof() {
        let u = unit("void f() { uint16_t x; x = (uint16_t) 3; x = sizeof(uint32_t); }");
        let Item::Func(f) = &u.items[0] else { panic!() };
        assert!(matches!(
            &f.body.stmts[1],
            Stmt::Assign { rhs, .. } if matches!(&rhs.kind, ExprKind::Cast(..))
        ));
        assert!(matches!(
            &f.body.stmts[2],
            Stmt::Assign { rhs, .. } if matches!(&rhs.kind, ExprKind::SizeofType(..))
        ));
    }

    #[test]
    fn nesc_call_signal_post() {
        let u = parse_unit(
            "task void t() { } void f() { call Timer.start(250); signal Send.done(0); post t(); }",
            Dialect::NesC,
        )
        .unwrap();
        let Item::Func(f) = &u.items[1] else { panic!() };
        assert!(matches!(
            &f.body.stmts[0],
            Stmt::Expr(e) if matches!(&e.kind, ExprKind::IfaceCall { kind: IfaceCallKind::Call, .. })
        ));
        assert!(matches!(
            &f.body.stmts[2],
            Stmt::Expr(e) if matches!(&e.kind, ExprKind::Post(t) if t == "t")
        ));
    }

    #[test]
    fn call_keyword_is_plain_ident_in_plain_dialect() {
        let u = unit("uint8_t call = 1;");
        assert!(matches!(&u.items[0], Item::Global(g) if g.sig.name == "call"));
    }

    #[test]
    fn rejects_function_pointer_call() {
        assert!(parse_unit("void f() { tab[0](); }", Dialect::Plain).is_err());
    }

    #[test]
    fn pointer_params_and_arrow() {
        let u = unit("struct m { uint8_t a; }; uint8_t f(struct m * p) { return p->a; }");
        let Item::Func(f) = &u.items[1] else { panic!() };
        assert_eq!(f.params.len(), 1);
        assert_eq!(f.params[0].ty.ptr_depth, 1);
    }

    #[test]
    fn ternary_parses() {
        let u = unit("void f(uint8_t a) { a = a ? 1 : 2; }");
        let Item::Func(f) = &u.items[0] else { panic!() };
        assert!(matches!(
            &f.body.stmts[0],
            Stmt::Assign { rhs, .. } if matches!(&rhs.kind, ExprKind::Ternary(..))
        ));
    }
}
