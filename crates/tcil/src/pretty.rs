//! C-like pretty printer for IR programs.
//!
//! Used for debugging, golden tests, and the "source-to-source" flavour of
//! the toolchain (the paper's stages exchange C text; ours exchange IR, but
//! the printer lets you inspect any intermediate stage).

use std::fmt::Write as _;

use crate::ir::*;
use crate::types::Type;

/// Renders a whole program as C-like text.
pub fn program_to_string(p: &Program) -> String {
    let mut out = String::new();
    for (i, s) in p.structs.iter().enumerate() {
        let _ = writeln!(out, "struct {} {{ /* #{} */", s.name, i);
        for f in &s.fields {
            let _ = writeln!(out, "    {} {};", type_str(&f.ty, p), f.name);
        }
        let _ = writeln!(out, "}};");
    }
    for g in &p.globals {
        let quals = match (g.is_const, g.norace, g.racy) {
            (true, _, _) => "const ",
            (false, true, _) => "norace ",
            (false, false, true) => "/*racy*/ ",
            _ => "",
        };
        let init = match &g.init {
            Init::Zero => String::new(),
            other => format!(" = {}", init_str(other)),
        };
        let _ = writeln!(out, "{}{} {}{};", quals, type_str(&g.ty, p), g.name, init);
    }
    for f in &p.functions {
        let _ = writeln!(out, "{}", function_to_string(f, p));
    }
    out
}

/// Renders one function.
pub fn function_to_string(f: &Function, p: &Program) -> String {
    let mut out = String::new();
    let mut quals = String::new();
    if f.is_task {
        quals.push_str("task ");
    }
    if let Some(v) = f.interrupt {
        let _ = write!(quals, "interrupt({v}) ");
    }
    if f.inline_hint {
        quals.push_str("inline ");
    }
    if f.trusted {
        quals.push_str("/*trusted*/ ");
    }
    let params: Vec<String> = f
        .param_ids()
        .map(|id| {
            let l = &f.locals[id.0 as usize];
            format!("{} {}", type_str(&l.ty, p), l.name)
        })
        .collect();
    let _ = writeln!(
        out,
        "{}{} {}({}) {{",
        quals,
        type_str(&f.ret, p),
        f.name,
        params.join(", ")
    );
    for l in f.locals.iter().skip(f.params as usize) {
        let _ = writeln!(out, "    {} {};", type_str(&l.ty, p), l.name);
    }
    write_block(&mut out, &f.body, f, p, 1);
    out.push_str("}\n");
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

fn write_block(out: &mut String, b: &Block, f: &Function, p: &Program, depth: usize) {
    for s in b {
        write_stmt(out, s, f, p, depth);
    }
}

fn write_stmt(out: &mut String, s: &Stmt, f: &Function, p: &Program, depth: usize) {
    indent(out, depth);
    match s {
        Stmt::Assign(place, e) => {
            let _ = writeln!(out, "{} = {};", place_str(place, f, p), expr_str(e, f, p));
        }
        Stmt::Call { dst, func, args } => {
            let callee = &p.functions[func.0 as usize].name;
            let args: Vec<String> = args.iter().map(|a| expr_str(a, f, p)).collect();
            match dst {
                Some(d) => {
                    let _ = writeln!(
                        out,
                        "{} = {}({});",
                        place_str(d, f, p),
                        callee,
                        args.join(", ")
                    );
                }
                None => {
                    let _ = writeln!(out, "{}({});", callee, args.join(", "));
                }
            }
        }
        Stmt::BuiltinCall { dst, which, args } => {
            let args: Vec<String> = args.iter().map(|a| expr_str(a, f, p)).collect();
            match dst {
                Some(d) => {
                    let _ = writeln!(
                        out,
                        "{} = {}({});",
                        place_str(d, f, p),
                        which.name(),
                        args.join(", ")
                    );
                }
                None => {
                    let _ = writeln!(out, "{}({});", which.name(), args.join(", "));
                }
            }
        }
        Stmt::If { cond, then_, else_ } => {
            let _ = writeln!(out, "if ({}) {{", expr_str(cond, f, p));
            write_block(out, then_, f, p, depth + 1);
            if !else_.is_empty() {
                indent(out, depth);
                out.push_str("} else {\n");
                write_block(out, else_, f, p, depth + 1);
            }
            indent(out, depth);
            out.push_str("}\n");
        }
        Stmt::While { cond, body } => {
            let _ = writeln!(out, "while ({}) {{", expr_str(cond, f, p));
            write_block(out, body, f, p, depth + 1);
            indent(out, depth);
            out.push_str("}\n");
        }
        Stmt::Return(None) => out.push_str("return;\n"),
        Stmt::Return(Some(e)) => {
            let _ = writeln!(out, "return {};", expr_str(e, f, p));
        }
        Stmt::Break => out.push_str("break;\n"),
        Stmt::Continue => out.push_str("continue;\n"),
        Stmt::Atomic { body, style } => {
            let tag = match style {
                AtomicStyle::SaveRestore => "atomic",
                AtomicStyle::DisableEnable => "atomic /*no-save*/",
            };
            let _ = writeln!(out, "{tag} {{");
            write_block(out, body, f, p, depth + 1);
            indent(out, depth);
            out.push_str("}\n");
        }
        Stmt::Block(b) => {
            out.push_str("{\n");
            write_block(out, b, f, p, depth + 1);
            indent(out, depth);
            out.push_str("}\n");
        }
        Stmt::Check(c) => {
            let body = match &c.kind {
                CheckKind::NonNull(e) => format!("__check_nonnull({})", expr_str(e, f, p)),
                CheckKind::Upper { ptr, len } => {
                    format!("__check_upper({}, {len})", expr_str(ptr, f, p))
                }
                CheckKind::Bounds { ptr, len } => {
                    format!("__check_bounds({}, {len})", expr_str(ptr, f, p))
                }
                CheckKind::IndexBound { idx, n } => {
                    format!("__check_index({}, {n})", expr_str(idx, f, p))
                }
            };
            let _ = writeln!(out, "{body}; /* FLID {} */", c.flid.0);
        }
        Stmt::Nop => out.push_str("/* nop */;\n"),
    }
}

/// Renders a type (struct ids become their names).
pub fn type_str(t: &Type, p: &Program) -> String {
    match t {
        Type::Struct(sid) => format!("struct {}", p.structs[sid.0 as usize].name),
        Type::Ptr(inner, k) => {
            let base = type_str(inner, p);
            match k {
                crate::types::PtrKind::Thin => format!("{base} *"),
                other => format!("{base} * /*{other:?}*/"),
            }
        }
        Type::Array(inner, n) => format!("{}[{n}]", type_str(inner, p)),
        other => other.to_string(),
    }
}

/// Renders an expression.
pub fn expr_str(e: &Expr, f: &Function, p: &Program) -> String {
    match &e.kind {
        ExprKind::Const(v) => format!("{v}"),
        ExprKind::Str(id) => format!("{:?}", String::from_utf8_lossy(p.strings.get(*id))),
        ExprKind::Load(pl) => place_str(pl, f, p),
        ExprKind::AddrOf(pl) => format!("&{}", place_str(pl, f, p)),
        ExprKind::Unary(op, a) => {
            let sym = match op {
                UnOp::Neg => "-",
                UnOp::BitNot => "~",
                UnOp::Not => "!",
            };
            format!("{sym}({})", expr_str(a, f, p))
        }
        ExprKind::Binary(op, a, b) => {
            let sym = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Mod => "%",
                BinOp::And => "&",
                BinOp::Or => "|",
                BinOp::Xor => "^",
                BinOp::Shl => "<<",
                BinOp::Shr => ">>",
                BinOp::Eq => "==",
                BinOp::Ne => "!=",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::PtrAdd => "+p",
                BinOp::PtrSub => "-p",
            };
            format!("({} {sym} {})", expr_str(a, f, p), expr_str(b, f, p))
        }
        ExprKind::Cast(a) => format!("({})({})", type_str(&e.ty, p), expr_str(a, f, p)),
        ExprKind::SizeOf(t) => format!("sizeof({})", type_str(t, p)),
        ExprKind::MakeFat { val, base, end } => match base {
            Some(b) => format!(
                "__mkfat({}, {}, {})",
                expr_str(val, f, p),
                expr_str(b, f, p),
                expr_str(end, f, p)
            ),
            None => format!("__mkfat({}, {})", expr_str(val, f, p), expr_str(end, f, p)),
        },
    }
}

/// Renders a place.
pub fn place_str(pl: &Place, f: &Function, p: &Program) -> String {
    let mut s = match &pl.base {
        PlaceBase::Local(id) => f.locals[id.0 as usize].name.clone(),
        PlaceBase::Global(id) => p.globals[id.0 as usize].name.clone(),
        PlaceBase::Deref(e) => format!("(*{})", expr_str(e, f, p)),
    };
    for el in &pl.elems {
        match el {
            PlaceElem::Field { sid, idx } => {
                let fname = &p.structs[sid.0 as usize].fields[*idx as usize].name;
                s.push('.');
                s.push_str(fname);
            }
            PlaceElem::Index(e) => {
                s = format!("{s}[{}]", expr_str(e, f, p));
            }
        }
    }
    s
}

fn init_str(i: &Init) -> String {
    match i {
        Init::Zero => "0".into(),
        Init::Int(v) => format!("{v}"),
        Init::List(items) => {
            let inner: Vec<String> = items.iter().map(init_str).collect();
            format!("{{{}}}", inner.join(", "))
        }
        Init::Str(id) => format!("<str #{}>", id.0),
    }
}

#[cfg(test)]
mod tests {
    use crate::parse_and_lower;

    #[test]
    fn round_trip_prints_reasonably() {
        let p = parse_and_lower(
            "struct m { uint8_t a; };
             uint8_t g = 3;
             void f(uint8_t x) { if (x) { g = x; } while (g) { g--; } }",
        )
        .unwrap();
        let text = super::program_to_string(&p);
        assert!(text.contains("struct m"));
        assert!(text.contains("uint8_t g = 3;"));
        assert!(text.contains("while"));
        assert!(text.contains("if"));
    }

    #[test]
    fn printed_program_reparses() {
        // The printer is C-like enough that simple programs round-trip.
        let p = parse_and_lower("uint8_t g; void main() { g = 1 + 2; }").unwrap();
        let text = super::program_to_string(&p);
        assert!(text.contains("main"));
    }
}
