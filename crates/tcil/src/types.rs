//! The TCL type system and the byte-exact data layout of the M16 target.
//!
//! Layout rules (deliberately simple, like an 8/16-bit microcontroller ABI):
//!
//! * integers are 1, 2, or 4 bytes; there is **no alignment padding** —
//!   the AVR-class targets the paper uses have byte-aligned memory, which
//!   is also why the x86 alignment checks in the original CCured runtime
//!   could be deleted (§2.3),
//! * thin pointers are 2 bytes,
//! * CCured fat pointers occupy 2 (`FSEQ`) or 3 (`SEQ`) machine words —
//!   after the curing pass they are represented as ordinary structs, but
//!   [`PtrKind`] annotations carry the inference result.

use std::fmt;

/// Width and signedness of an integer type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IntKind {
    /// `uint8_t`, `bool`, `result_t`
    U8,
    /// `int8_t`, `char`
    I8,
    /// `uint16_t`
    U16,
    /// `int16_t`, `int`
    I16,
    /// `uint32_t`
    U32,
    /// `int32_t`
    I32,
}

impl IntKind {
    /// Size of the type in bytes.
    pub fn size(self) -> u32 {
        match self {
            IntKind::U8 | IntKind::I8 => 1,
            IntKind::U16 | IntKind::I16 => 2,
            IntKind::U32 | IntKind::I32 => 4,
        }
    }

    /// Whether the type is signed.
    pub fn signed(self) -> bool {
        matches!(self, IntKind::I8 | IntKind::I16 | IntKind::I32)
    }

    /// The unsigned kind of the same width.
    pub fn unsigned(self) -> IntKind {
        match self {
            IntKind::I8 => IntKind::U8,
            IntKind::I16 => IntKind::U16,
            IntKind::I32 => IntKind::U32,
            k => k,
        }
    }

    /// Wraps `v` to this type's range, exactly as a store+load through
    /// memory of this width would on the target.
    pub fn wrap(self, v: i64) -> i64 {
        match self {
            IntKind::U8 => v as u8 as i64,
            IntKind::I8 => v as i8 as i64,
            IntKind::U16 => v as u16 as i64,
            IntKind::I16 => v as i16 as i64,
            IntKind::U32 => v as u32 as i64,
            IntKind::I32 => v as i32 as i64,
        }
    }

    /// Smallest representable value.
    pub fn min_value(self) -> i64 {
        if self.signed() {
            -(1i64 << (self.size() * 8 - 1))
        } else {
            0
        }
    }

    /// Largest representable value.
    pub fn max_value(self) -> i64 {
        if self.signed() {
            (1i64 << (self.size() * 8 - 1)) - 1
        } else {
            (1i64 << (self.size() * 8)) - 1
        }
    }

    /// The C "usual arithmetic conversion" result of combining two kinds:
    /// the wider width wins; at equal width unsigned wins.
    pub fn promote(a: IntKind, b: IntKind) -> IntKind {
        let w = a.size().max(b.size()).max(2); // integer promotion to >= 16 bit
        let signed = match a.size().cmp(&b.size()) {
            std::cmp::Ordering::Greater => a.signed(),
            std::cmp::Ordering::Less => b.signed(),
            std::cmp::Ordering::Equal => a.signed() && b.signed(),
        };
        IntKind::from_parts(w, signed)
    }

    /// Builds a kind from a byte width and signedness.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not 1, 2, or 4.
    pub fn from_parts(size: u32, signed: bool) -> IntKind {
        match (size, signed) {
            (1, false) => IntKind::U8,
            (1, true) => IntKind::I8,
            (2, false) => IntKind::U16,
            (2, true) => IntKind::I16,
            (4, false) => IntKind::U32,
            (4, true) => IntKind::I32,
            _ => panic!("invalid integer width {size}"),
        }
    }
}

impl fmt::Display for IntKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            IntKind::U8 => "uint8_t",
            IntKind::I8 => "int8_t",
            IntKind::U16 => "uint16_t",
            IntKind::I16 => "int16_t",
            IntKind::U32 => "uint32_t",
            IntKind::I32 => "int32_t",
        };
        f.write_str(name)
    }
}

/// CCured pointer kind, the result of whole-program pointer-kind inference.
///
/// * `Thin` — an uninstrumented pointer (unsafe baseline, or trusted code).
/// * `Safe` — needs only a null check before dereference; 1 word.
/// * `Fseq` — used with *forward* arithmetic; carries an upper bound; 2 words.
/// * `Seq`  — used with arbitrary arithmetic; carries both bounds; 3 words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum PtrKind {
    /// Plain machine pointer, no metadata, no checks.
    #[default]
    Thin,
    /// Checked pointer with no arithmetic: null check only.
    Safe,
    /// Forward-sequence pointer: value + end bound.
    Fseq,
    /// Sequence pointer: value + base + end bounds.
    Seq,
}

impl PtrKind {
    /// Number of 16-bit machine words this pointer representation occupies.
    pub fn words(self) -> u32 {
        match self {
            PtrKind::Thin | PtrKind::Safe => 1,
            PtrKind::Fseq => 2,
            PtrKind::Seq => 3,
        }
    }

    /// Least upper bound in the kind lattice `Safe < Fseq < Seq`
    /// (`Thin` is incomparable: trusted pointers stay thin).
    pub fn join(self, other: PtrKind) -> PtrKind {
        use PtrKind::*;
        match (self, other) {
            (Thin, k) | (k, Thin) => k,
            (Seq, _) | (_, Seq) => Seq,
            (Fseq, _) | (_, Fseq) => Fseq,
            (Safe, Safe) => Safe,
        }
    }
}

/// Identifies a struct definition within a [`crate::ir::Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StructId(pub u32);

/// A struct field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: Type,
}

/// A struct definition. Fields are laid out in order with no padding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructDef {
    /// Struct tag name.
    pub name: String,
    /// Ordered fields.
    pub fields: Vec<Field>,
}

impl StructDef {
    /// Finds a field index by name.
    pub fn field_index(&self, name: &str) -> Option<u32> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .map(|i| i as u32)
    }
}

/// A TCL type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// `void` — only valid as a function return type or pointee.
    Void,
    /// Integer type.
    Int(IntKind),
    /// Pointer with a CCured kind annotation.
    Ptr(Box<Type>, PtrKind),
    /// Fixed-size array.
    Array(Box<Type>, u32),
    /// Named struct.
    Struct(StructId),
}

impl Type {
    /// Shorthand for `Type::Int(IntKind::U8)`.
    pub fn u8() -> Type {
        Type::Int(IntKind::U8)
    }

    /// Shorthand for `Type::Int(IntKind::U16)`.
    pub fn u16() -> Type {
        Type::Int(IntKind::U16)
    }

    /// Shorthand for a thin pointer to `t`.
    pub fn thin_ptr(t: Type) -> Type {
        Type::Ptr(Box::new(t), PtrKind::Thin)
    }

    /// Returns the integer kind if this is an integer type.
    pub fn as_int(&self) -> Option<IntKind> {
        match self {
            Type::Int(k) => Some(*k),
            _ => None,
        }
    }

    /// Returns `(pointee, kind)` if this is a pointer type.
    pub fn as_ptr(&self) -> Option<(&Type, PtrKind)> {
        match self {
            Type::Ptr(t, k) => Some((t, *k)),
            _ => None,
        }
    }

    /// True if this is a pointer type (of any kind).
    pub fn is_ptr(&self) -> bool {
        matches!(self, Type::Ptr(..))
    }

    /// True if this is an integer type.
    pub fn is_int(&self) -> bool {
        matches!(self, Type::Int(_))
    }

    /// True for types a value of which fits in a single eval-stack cell
    /// (integers and thin/safe pointers).
    pub fn is_scalar(&self) -> bool {
        match self {
            Type::Int(_) => true,
            Type::Ptr(_, k) => k.words() == 1,
            _ => false,
        }
    }

    /// Structural equality ignoring pointer-kind annotations: the type
    /// checker uses this, since kinds are inferred later by the CCured
    /// stage and must not affect what programs are accepted.
    pub fn compat(&self, other: &Type) -> bool {
        match (self, other) {
            (Type::Void, Type::Void) => true,
            (Type::Int(a), Type::Int(b)) => a == b,
            (Type::Ptr(a, _), Type::Ptr(b, _)) => a.compat(b),
            (Type::Array(a, n), Type::Array(b, m)) => n == m && a.compat(b),
            (Type::Struct(a), Type::Struct(b)) => a == b,
            _ => false,
        }
    }
}

/// Computes sizes and field offsets under the no-padding layout.
///
/// Layout depends on the struct table (and, through pointer kinds, on the
/// result of CCured inference), so it is a free function over the table
/// rather than a method on [`Type`].
pub fn size_of(ty: &Type, structs: &[StructDef]) -> u32 {
    match ty {
        Type::Void => 0,
        Type::Int(k) => k.size(),
        Type::Ptr(_, k) => k.words() * 2,
        Type::Array(t, n) => size_of(t, structs) * n,
        Type::Struct(sid) => structs[sid.0 as usize]
            .fields
            .iter()
            .map(|f| size_of(&f.ty, structs))
            .sum(),
    }
}

/// Byte offset of field `idx` within struct `sid`.
///
/// # Panics
///
/// Panics if `idx` is out of range for the struct.
pub fn field_offset(sid: StructId, idx: u32, structs: &[StructDef]) -> u32 {
    let def = &structs[sid.0 as usize];
    assert!(
        (idx as usize) < def.fields.len(),
        "field index out of range"
    );
    def.fields[..idx as usize]
        .iter()
        .map(|f| size_of(&f.ty, structs))
        .sum()
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => write!(f, "void"),
            Type::Int(k) => write!(f, "{k}"),
            Type::Ptr(t, PtrKind::Thin) => write!(f, "{t} *"),
            Type::Ptr(t, k) => write!(f, "{t} * /*{k:?}*/"),
            Type::Array(t, n) => write!(f, "{t}[{n}]"),
            Type::Struct(sid) => write!(f, "struct #{}", sid.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_sizes_and_ranges() {
        assert_eq!(IntKind::U8.size(), 1);
        assert_eq!(IntKind::I32.size(), 4);
        assert_eq!(IntKind::U16.max_value(), 65535);
        assert_eq!(IntKind::I8.min_value(), -128);
        assert_eq!(IntKind::I16.max_value(), 32767);
    }

    #[test]
    fn wrap_matches_two_complement() {
        assert_eq!(IntKind::U8.wrap(256), 0);
        assert_eq!(IntKind::U8.wrap(-1), 255);
        assert_eq!(IntKind::I8.wrap(130), -126);
        assert_eq!(IntKind::U16.wrap(65536 + 7), 7);
        assert_eq!(IntKind::I16.wrap(0x8000), -32768);
    }

    #[test]
    fn promotion_follows_c_rules() {
        // Everything promotes to at least 16 bits on this target.
        assert_eq!(IntKind::promote(IntKind::U8, IntKind::U8), IntKind::U16);
        assert_eq!(IntKind::promote(IntKind::I8, IntKind::I8), IntKind::I16);
        assert_eq!(IntKind::promote(IntKind::U16, IntKind::I16), IntKind::U16);
        assert_eq!(IntKind::promote(IntKind::I32, IntKind::U16), IntKind::I32);
        assert_eq!(IntKind::promote(IntKind::U32, IntKind::I32), IntKind::U32);
    }

    #[test]
    fn pointer_kind_words_and_join() {
        assert_eq!(PtrKind::Thin.words(), 1);
        assert_eq!(PtrKind::Seq.words(), 3);
        assert_eq!(PtrKind::Safe.join(PtrKind::Fseq), PtrKind::Fseq);
        assert_eq!(PtrKind::Fseq.join(PtrKind::Seq), PtrKind::Seq);
        assert_eq!(PtrKind::Thin.join(PtrKind::Safe), PtrKind::Safe);
    }

    #[test]
    fn layout_has_no_padding() {
        let structs = vec![StructDef {
            name: "s".into(),
            fields: vec![
                Field {
                    name: "a".into(),
                    ty: Type::u8(),
                },
                Field {
                    name: "b".into(),
                    ty: Type::Int(IntKind::U32),
                },
                Field {
                    name: "c".into(),
                    ty: Type::u8(),
                },
            ],
        }];
        let s = Type::Struct(StructId(0));
        assert_eq!(size_of(&s, &structs), 6);
        assert_eq!(field_offset(StructId(0), 0, &structs), 0);
        assert_eq!(field_offset(StructId(0), 1, &structs), 1);
        assert_eq!(field_offset(StructId(0), 2, &structs), 5);
    }

    #[test]
    fn fat_pointer_layout_matches_kind() {
        let t = Type::Ptr(Box::new(Type::u8()), PtrKind::Seq);
        assert_eq!(size_of(&t, &[]), 6);
        let t = Type::Ptr(Box::new(Type::u8()), PtrKind::Fseq);
        assert_eq!(size_of(&t, &[]), 4);
        let t = Type::thin_ptr(Type::u8());
        assert_eq!(size_of(&t, &[]), 2);
    }

    #[test]
    fn compat_ignores_pointer_kinds() {
        let a = Type::Ptr(Box::new(Type::u8()), PtrKind::Thin);
        let b = Type::Ptr(Box::new(Type::u8()), PtrKind::Seq);
        assert!(a.compat(&b));
        assert!(!a.compat(&Type::thin_ptr(Type::u16())));
    }

    #[test]
    fn array_size_scales() {
        let t = Type::Array(Box::new(Type::u16()), 10);
        assert_eq!(size_of(&t, &[]), 20);
    }
}
