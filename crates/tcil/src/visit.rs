//! IR walking helpers used by analysis and transformation passes.
//!
//! Passes in `ccured`, `cxprop`, and `backend` share these little
//! traversals instead of re-implementing statement recursion.

use crate::ir::{Block, CheckKind, Expr, ExprKind, Place, PlaceBase, PlaceElem, Stmt};

/// Visits every statement in `block`, recursing into nested blocks,
/// in pre-order.
pub fn walk_stmts<'a>(block: &'a Block, f: &mut impl FnMut(&'a Stmt)) {
    for s in block {
        f(s);
        match s {
            Stmt::If { then_, else_, .. } => {
                walk_stmts(then_, f);
                walk_stmts(else_, f);
            }
            Stmt::While { body, .. } | Stmt::Atomic { body, .. } => walk_stmts(body, f),
            Stmt::Block(b) => walk_stmts(b, f),
            _ => {}
        }
    }
}

/// Pre-order walk over every statement of `block`, passing each one its
/// deterministic *site index*: the statement's position in the walk,
/// starting at 0. Site indices are the statement-level analogue of the
/// FLID convention — the IR carries no source positions, so analyses
/// label a statement site `func:index` (see [`site_label`]) exactly as
/// the CCured instrumenter labels check sites. The numbering is stable
/// under any walk of the same body, which lets one pass record sites and
/// another (or a later fixpoint iteration) find the same statements
/// again.
pub fn walk_stmts_sited<'a>(block: &'a Block, f: &mut impl FnMut(u32, &'a Stmt)) {
    fn go<'a>(block: &'a Block, next: &mut u32, f: &mut impl FnMut(u32, &'a Stmt)) {
        for s in block {
            let idx = *next;
            *next += 1;
            f(idx, s);
            match s {
                Stmt::If { then_, else_, .. } => {
                    go(then_, next, f);
                    go(else_, next, f);
                }
                Stmt::While { body, .. } | Stmt::Atomic { body, .. } => go(body, next, f),
                Stmt::Block(b) => go(b, next, f),
                _ => {}
            }
        }
    }
    go(block, &mut 0, f);
}

/// The FLID-style label of a statement site: `func:index`, matching the
/// `func:site` convention of check FLID messages.
pub fn site_label(func: &str, site: u32) -> String {
    format!("{func}:{site}")
}

/// Mutable pre-order walk over every statement.
pub fn walk_stmts_mut(block: &mut Block, f: &mut impl FnMut(&mut Stmt)) {
    for s in block.iter_mut() {
        f(s);
        match s {
            Stmt::If { then_, else_, .. } => {
                walk_stmts_mut(then_, f);
                walk_stmts_mut(else_, f);
            }
            Stmt::While { body, .. } | Stmt::Atomic { body, .. } => walk_stmts_mut(body, f),
            Stmt::Block(b) => walk_stmts_mut(b, f),
            _ => {}
        }
    }
}

/// Calls `f` for each *top-level* expression of `s` (conditions, assignment
/// sources, call arguments, check operands, and the expressions inside the
/// statement's destination places). Does not recurse into nested statements.
pub fn stmt_exprs<'a>(s: &'a Stmt, f: &mut impl FnMut(&'a Expr)) {
    let on_place = |p: &'a Place, f: &mut dyn FnMut(&'a Expr)| {
        if let PlaceBase::Deref(e) = &p.base {
            f(e);
        }
        for el in &p.elems {
            if let PlaceElem::Index(e) = el {
                f(e);
            }
        }
    };
    match s {
        Stmt::Assign(p, e) => {
            on_place(p, f);
            f(e);
        }
        Stmt::Call { dst, args, .. } | Stmt::BuiltinCall { dst, args, .. } => {
            if let Some(p) = dst {
                on_place(p, f);
            }
            for a in args {
                f(a);
            }
        }
        Stmt::If { cond, .. } => f(cond),
        Stmt::While { cond, .. } => f(cond),
        Stmt::Return(Some(e)) => f(e),
        Stmt::Check(c) => match &c.kind {
            CheckKind::NonNull(p) => f(p),
            CheckKind::Upper { ptr, .. } | CheckKind::Bounds { ptr, .. } => f(ptr),
            CheckKind::IndexBound { idx, .. } => f(idx),
        },
        _ => {}
    }
}

/// Mutable variant of [`stmt_exprs`].
pub fn stmt_exprs_mut(s: &mut Stmt, f: &mut impl FnMut(&mut Expr)) {
    fn on_place(p: &mut Place, f: &mut impl FnMut(&mut Expr)) {
        if let PlaceBase::Deref(e) = &mut p.base {
            f(e);
        }
        for el in &mut p.elems {
            if let PlaceElem::Index(e) = el {
                f(e);
            }
        }
    }
    match s {
        Stmt::Assign(p, e) => {
            on_place(p, f);
            f(e);
        }
        Stmt::Call { dst, args, .. } | Stmt::BuiltinCall { dst, args, .. } => {
            if let Some(p) = dst {
                on_place(p, f);
            }
            for a in args {
                f(a);
            }
        }
        Stmt::If { cond, .. } => f(cond),
        Stmt::While { cond, .. } => f(cond),
        Stmt::Return(Some(e)) => f(e),
        Stmt::Check(c) => match &mut c.kind {
            CheckKind::NonNull(p) => f(p),
            CheckKind::Upper { ptr, .. } | CheckKind::Bounds { ptr, .. } => f(ptr),
            CheckKind::IndexBound { idx, .. } => f(idx),
        },
        _ => {}
    }
}

/// Visits `e` and all sub-expressions (including those inside places) in
/// pre-order.
pub fn walk_expr<'a>(e: &'a Expr, f: &mut impl FnMut(&'a Expr)) {
    f(e);
    match &e.kind {
        ExprKind::Unary(_, a) | ExprKind::Cast(a) => walk_expr(a, f),
        ExprKind::Binary(_, a, b) => {
            walk_expr(a, f);
            walk_expr(b, f);
        }
        ExprKind::Load(p) | ExprKind::AddrOf(p) => walk_place(p, f),
        ExprKind::MakeFat { val, base, end } => {
            walk_expr(val, f);
            if let Some(b) = base {
                walk_expr(b, f);
            }
            walk_expr(end, f);
        }
        _ => {}
    }
}

/// Visits the expressions embedded in a place.
pub fn walk_place<'a>(p: &'a Place, f: &mut impl FnMut(&'a Expr)) {
    if let PlaceBase::Deref(e) = &p.base {
        walk_expr(e, f);
    }
    for el in &p.elems {
        if let PlaceElem::Index(e) = el {
            walk_expr(e, f);
        }
    }
}

/// Mutable post-order walk over an expression tree (children first, so a
/// rewriter can fold bottom-up in one pass).
pub fn walk_expr_mut(e: &mut Expr, f: &mut impl FnMut(&mut Expr)) {
    match &mut e.kind {
        ExprKind::Unary(_, a) | ExprKind::Cast(a) => walk_expr_mut(a, f),
        ExprKind::Binary(_, a, b) => {
            walk_expr_mut(a, f);
            walk_expr_mut(b, f);
        }
        ExprKind::Load(p) | ExprKind::AddrOf(p) => walk_place_mut(p, f),
        ExprKind::MakeFat { val, base, end } => {
            walk_expr_mut(val, f);
            if let Some(b) = base {
                walk_expr_mut(b, f);
            }
            walk_expr_mut(end, f);
        }
        _ => {}
    }
    f(e);
}

/// Mutable walk over the expressions embedded in a place.
pub fn walk_place_mut(p: &mut Place, f: &mut impl FnMut(&mut Expr)) {
    if let PlaceBase::Deref(e) = &mut p.base {
        walk_expr_mut(e, f);
    }
    for el in &mut p.elems {
        if let PlaceElem::Index(e) = el {
            walk_expr_mut(e, f);
        }
    }
}

/// Removes `Stmt::Nop` and empty `Stmt::Block` entries left behind by
/// rewriting passes, recursively.
pub fn sweep_nops(block: &mut Block) {
    for s in block.iter_mut() {
        match s {
            Stmt::If { then_, else_, .. } => {
                sweep_nops(then_);
                sweep_nops(else_);
            }
            Stmt::While { body, .. } | Stmt::Atomic { body, .. } => sweep_nops(body),
            Stmt::Block(b) => sweep_nops(b),
            _ => {}
        }
    }
    block.retain(|s| !matches!(s, Stmt::Nop) && !matches!(s, Stmt::Block(b) if b.is_empty()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::*;
    use crate::types::IntKind;

    fn sample_block() -> Block {
        vec![
            Stmt::Assign(
                Place::local(LocalId(0), crate::types::Type::u8()),
                Expr::const_int(1, IntKind::U8),
            ),
            Stmt::If {
                cond: Expr::bool_val(true),
                then_: vec![Stmt::Nop],
                else_: vec![Stmt::While {
                    cond: Expr::bool_val(false),
                    body: vec![Stmt::Break],
                }],
            },
        ]
    }

    #[test]
    fn walk_stmts_visits_nested() {
        let b = sample_block();
        let mut n = 0;
        walk_stmts(&b, &mut |_| n += 1);
        assert_eq!(n, 5); // assign, if, nop, while, break
    }

    #[test]
    fn sited_walk_numbers_statements_in_preorder() {
        let b = sample_block();
        let mut seen = Vec::new();
        walk_stmts_sited(&b, &mut |idx, s| {
            seen.push((idx, std::mem::discriminant(s)));
        });
        // assign=0, if=1, nop=2 (then), while=3 (else), break=4.
        assert_eq!(seen.len(), 5);
        assert_eq!(
            seen.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
            [0, 1, 2, 3, 4]
        );
        // The numbering matches the plain walk's visit order.
        let mut order = Vec::new();
        walk_stmts(&b, &mut |s| order.push(std::mem::discriminant(s)));
        assert_eq!(order, seen.into_iter().map(|(_, d)| d).collect::<Vec<_>>());
        assert_eq!(site_label("f", 3), "f:3");
    }

    #[test]
    fn sweep_removes_nops_and_empty_blocks() {
        let mut b = sample_block();
        b.push(Stmt::Block(vec![Stmt::Nop]));
        sweep_nops(&mut b);
        let mut n = 0;
        walk_stmts(&b, &mut |s| {
            assert!(!matches!(s, Stmt::Nop));
            n += 1;
        });
        assert_eq!(n, 4);
    }

    #[test]
    fn expr_walk_reaches_place_indices() {
        let idx = Expr::const_int(3, IntKind::U16);
        let arr = Place::local(
            LocalId(0),
            crate::types::Type::Array(Box::new(crate::types::Type::u8()), 8),
        )
        .index(idx, crate::types::Type::u8());
        let e = Expr::load(arr);
        let mut consts = 0;
        walk_expr(&e, &mut |x| {
            if x.as_const().is_some() {
                consts += 1;
            }
        });
        assert_eq!(consts, 1);
    }
}
