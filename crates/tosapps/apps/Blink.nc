// BlinkTask: toggle the red LED from a task posted by a periodic timer
// (the classic first TinyOS app, in its task-posting variant measured
// by the paper as "Blink / BlinkTask").

module BlinkTaskM {
    provides interface StdControl;
    uses interface Timer;
    uses interface Leds;
}
implementation {
    uint8_t led_state;

    task void toggle() {
        led_state = (uint8_t)(led_state ^ 1);
        call Leds.set(led_state);
    }

    command result_t StdControl.init() {
        led_state = 0;
        return SUCCESS;
    }

    command result_t StdControl.start() {
        // 16 base periods = 512 ms.
        return call Timer.start(16);
    }

    command result_t StdControl.stop() {
        return call Timer.stop();
    }

    event result_t Timer.fired() {
        post toggle();
        return SUCCESS;
    }
}

configuration BlinkTask {
}
implementation {
    components Main, BlinkTaskM, TimerC, LedsC;
    Main.StdControl -> TimerC.StdControl;
    Main.StdControl -> BlinkTaskM.StdControl;
    BlinkTaskM.Timer -> TimerC.Timer0;
    BlinkTaskM.Leds -> LedsC.Leds;
}
