// CntToLedsAndRfm: a timer-driven counter shown on the LEDs and
// broadcast over the radio on every tick.

enum {
    AM_COUNTMSG = 5,
};

module CntToLedsAndRfmM {
    provides interface StdControl;
    uses interface Timer;
    uses interface Leds;
    uses interface SendMsg;
}
implementation {
    uint16_t counter;
    uint8_t msg[2];

    command result_t StdControl.init() {
        counter = 0;
        return SUCCESS;
    }

    command result_t StdControl.start() {
        // Count every 8 base periods = 256 ms.
        return call Timer.start(8);
    }

    command result_t StdControl.stop() {
        return call Timer.stop();
    }

    event result_t Timer.fired() {
        counter++;
        call Leds.set((uint8_t)(counter & 7));
        msg[0] = (uint8_t)(counter & 0xFF);
        msg[1] = (uint8_t)(counter >> 8);
        call SendMsg.send(TOS_BCAST_ADDR, AM_COUNTMSG, 2, msg);
        return SUCCESS;
    }

    event result_t SendMsg.sendDone(result_t success) {
        return SUCCESS;
    }
}

configuration CntToLedsAndRfm {
}
implementation {
    components Main, CntToLedsAndRfmM, TimerC, LedsC, RadioC;
    Main.StdControl -> TimerC.StdControl;
    Main.StdControl -> RadioC.StdControl;
    Main.StdControl -> CntToLedsAndRfmM.StdControl;
    CntToLedsAndRfmM.Timer -> TimerC.Timer0;
    CntToLedsAndRfmM.Leds -> LedsC.Leds;
    CntToLedsAndRfmM.SendMsg -> RadioC.SendMsg;
}
