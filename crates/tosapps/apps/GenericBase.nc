// GenericBase: the classic base-station bridge. Every radio frame that
// passes the CRC is re-framed onto the UART for the attached host.

module GenericBaseM {
    provides interface StdControl;
    uses interface ReceiveMsg;
    uses interface Uart;
}
implementation {
    command result_t StdControl.init() {
        return SUCCESS;
    }

    command result_t StdControl.start() {
        return SUCCESS;
    }

    command result_t StdControl.stop() {
        return SUCCESS;
    }

    event result_t ReceiveMsg.receive(uint16_t addr, uint8_t am_type, uint8_t * payload, uint8_t length) {
        uint8_t i;
        call Uart.put(0x7E);
        call Uart.put(am_type);
        call Uart.put(length);
        for (i = 0; i < length; i++) {
            call Uart.put(payload[i]);
        }
        return SUCCESS;
    }
}

configuration GenericBase {
}
implementation {
    components Main, GenericBaseM, RadioC, UartC;
    Main.StdControl -> RadioC.StdControl;
    Main.StdControl -> UartC.StdControl;
    Main.StdControl -> GenericBaseM.StdControl;
    GenericBaseM.ReceiveMsg -> RadioC.ReceiveMsg;
    GenericBaseM.Uart -> UartC.Uart;
}
