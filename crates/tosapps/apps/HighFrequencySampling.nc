// HighFrequencySampling: sample the sensor on every clock base period,
// accumulate eight readings, and stream each full buffer over the
// radio as one bulk packet.

enum {
    AM_HFSMSG = 22,
    HFS_SAMPLES = 8,
};

module HighFrequencySamplingM {
    provides interface StdControl;
    uses interface Timer;
    uses interface ADC;
    uses interface SendMsg;
}
implementation {
    uint16_t samples[HFS_SAMPLES];
    uint8_t nsamples;
    uint16_t seqno;
    uint8_t packet[18];

    command result_t StdControl.init() {
        nsamples = 0;
        seqno = 0;
        return SUCCESS;
    }

    command result_t StdControl.start() {
        // Sample on every base period (32 ms).
        return call Timer.start(1);
    }

    command result_t StdControl.stop() {
        return call Timer.stop();
    }

    event result_t Timer.fired() {
        call ADC.getData();
        return SUCCESS;
    }

    task void flush() {
        uint8_t i;
        packet[0] = (uint8_t)(seqno & 0xFF);
        packet[1] = (uint8_t)(seqno >> 8);
        for (i = 0; i < HFS_SAMPLES; i++) {
            packet[(uint8_t)(2 + i * 2)] = (uint8_t)(samples[i] & 0xFF);
            packet[(uint8_t)(3 + i * 2)] = (uint8_t)(samples[i] >> 8);
        }
        if (call SendMsg.send(TOS_BCAST_ADDR, AM_HFSMSG, 18, packet) == SUCCESS) {
            seqno++;
        }
    }

    event result_t ADC.dataReady(uint16_t data) {
        if (nsamples < HFS_SAMPLES) {
            samples[nsamples] = data;
            nsamples++;
        }
        if (nsamples >= HFS_SAMPLES) {
            nsamples = 0;
            post flush();
        }
        return SUCCESS;
    }

    event result_t SendMsg.sendDone(result_t success) {
        return SUCCESS;
    }
}

configuration HighFrequencySampling {
}
implementation {
    components Main, HighFrequencySamplingM, TimerC, PhotoC, RadioC;
    Main.StdControl -> TimerC.StdControl;
    Main.StdControl -> RadioC.StdControl;
    Main.StdControl -> HighFrequencySamplingM.StdControl;
    HighFrequencySamplingM.Timer -> TimerC.Timer0;
    HighFrequencySamplingM.ADC -> PhotoC.ADC;
    HighFrequencySamplingM.SendMsg -> RadioC.SendMsg;
}
