// Ident: answer identity requests with the node's identity record --
// a flash-resident tag plus the node address.

enum {
    AM_IDENTREQ = 20,
    AM_IDENTREPLY = 21,
};

// "M16" + version, placed in the flash window (const data).
const uint8_t IDENT_TAG[4] = {0x4D, 0x31, 0x36, 0x01};

module IdentM {
    provides interface StdControl;
    uses interface ReceiveMsg;
    uses interface SendMsg;
    uses interface Leds;
}
implementation {
    uint8_t reply[6];
    uint8_t replies;

    command result_t StdControl.init() {
        replies = 0;
        return SUCCESS;
    }

    command result_t StdControl.start() {
        return SUCCESS;
    }

    command result_t StdControl.stop() {
        return SUCCESS;
    }

    event result_t ReceiveMsg.receive(uint16_t addr, uint8_t am_type, uint8_t * payload, uint8_t length) {
        uint8_t i;
        if (am_type == AM_IDENTREQ) {
            for (i = 0; i < 4; i++) {
                reply[i] = IDENT_TAG[i];
            }
            reply[4] = (uint8_t)(TOS_LOCAL_ADDRESS & 0xFF);
            reply[5] = (uint8_t)(TOS_LOCAL_ADDRESS >> 8);
            if (call SendMsg.send(TOS_BCAST_ADDR, AM_IDENTREPLY, 6, reply) == SUCCESS) {
                replies++;
                call Leds.set((uint8_t)(replies & 7));
            }
        }
        return SUCCESS;
    }

    event result_t SendMsg.sendDone(result_t success) {
        return SUCCESS;
    }
}

configuration Ident {
}
implementation {
    components Main, IdentM, RadioC, LedsC;
    Main.StdControl -> RadioC.StdControl;
    Main.StdControl -> IdentM.StdControl;
    IdentM.ReceiveMsg -> RadioC.ReceiveMsg;
    IdentM.SendMsg -> RadioC.SendMsg;
    IdentM.Leds -> LedsC.Leds;
}
