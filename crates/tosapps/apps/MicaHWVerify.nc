// MicaHWVerify: the hardware self-test. Each timer tick walks the
// LEDs, starts an ADC conversion, and reports a status record over
// the UART: marker, tick counter, sample lo, sample hi.

module MicaHWVerifyM {
    provides interface StdControl;
    uses interface Timer;
    uses interface ADC;
    uses interface Leds;
    uses interface Uart;
}
implementation {
    uint8_t tick;

    command result_t StdControl.init() {
        tick = 0;
        return SUCCESS;
    }

    command result_t StdControl.start() {
        // One self-test round every 8 base periods = 256 ms.
        return call Timer.start(8);
    }

    command result_t StdControl.stop() {
        return call Timer.stop();
    }

    event result_t Timer.fired() {
        tick++;
        call Leds.set((uint8_t)(tick & 7));
        call ADC.getData();
        return SUCCESS;
    }

    event result_t ADC.dataReady(uint16_t data) {
        call Uart.put(0xA5);
        call Uart.put(tick);
        call Uart.put((uint8_t)(data & 0xFF));
        call Uart.put((uint8_t)(data >> 8));
        return SUCCESS;
    }
}

configuration MicaHWVerify {
}
implementation {
    components Main, MicaHWVerifyM, TimerC, AdcC, LedsC, UartC;
    Main.StdControl -> TimerC.StdControl;
    Main.StdControl -> UartC.StdControl;
    Main.StdControl -> MicaHWVerifyM.StdControl;
    MicaHWVerifyM.Timer -> TimerC.Timer0;
    MicaHWVerifyM.ADC -> AdcC.ADC;
    MicaHWVerifyM.Leds -> LedsC.Leds;
    MicaHWVerifyM.Uart -> UartC.Uart;
}
