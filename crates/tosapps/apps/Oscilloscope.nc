// Oscilloscope: sample the photo sensor periodically, buffer four
// readings, and broadcast each full buffer over the radio.

enum {
    AM_OSCOPEMSG = 10,
};

module OscilloscopeM {
    provides interface StdControl;
    uses interface Timer;
    uses interface ADC;
    uses interface SendMsg;
}
implementation {
    uint8_t packet[10];
    uint8_t nsamples;
    uint16_t seqno;

    command result_t StdControl.init() {
        nsamples = 0;
        seqno = 0;
        return SUCCESS;
    }

    command result_t StdControl.start() {
        // Sample every 4 base periods = 128 ms.
        return call Timer.start(4);
    }

    command result_t StdControl.stop() {
        return call Timer.stop();
    }

    event result_t Timer.fired() {
        call ADC.getData();
        return SUCCESS;
    }

    task void send_buffer() {
        packet[0] = (uint8_t)(seqno & 0xFF);
        packet[1] = (uint8_t)(seqno >> 8);
        seqno++;
        call SendMsg.send(TOS_BCAST_ADDR, AM_OSCOPEMSG, 10, packet);
    }

    event result_t ADC.dataReady(uint16_t data) {
        if (nsamples < 4) {
            packet[(uint8_t)(2 + nsamples * 2)] = (uint8_t)(data & 0xFF);
            packet[(uint8_t)(3 + nsamples * 2)] = (uint8_t)(data >> 8);
            nsamples++;
        }
        if (nsamples >= 4) {
            nsamples = 0;
            post send_buffer();
        }
        return SUCCESS;
    }

    event result_t SendMsg.sendDone(result_t success) {
        return SUCCESS;
    }
}

configuration Oscilloscope {
}
implementation {
    components Main, OscilloscopeM, TimerC, PhotoC, RadioC;
    Main.StdControl -> TimerC.StdControl;
    Main.StdControl -> RadioC.StdControl;
    Main.StdControl -> OscilloscopeM.StdControl;
    OscilloscopeM.Timer -> TimerC.Timer0;
    OscilloscopeM.ADC -> PhotoC.ADC;
    OscilloscopeM.SendMsg -> RadioC.SendMsg;
}
