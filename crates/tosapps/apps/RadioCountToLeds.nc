// RadioCountToLeds: broadcast a local counter periodically and display
// the low bits of every counter value heard from other nodes on the
// LEDs (the TelosB benchmark of the paper's evaluation).

enum {
    AM_COUNT_RCTL = 6,
};

module RadioCountToLedsM {
    provides interface StdControl;
    uses interface Timer;
    uses interface Leds;
    uses interface SendMsg;
    uses interface ReceiveMsg;
}
implementation {
    uint16_t counter;
    uint8_t msg[2];

    command result_t StdControl.init() {
        counter = 0;
        return SUCCESS;
    }

    command result_t StdControl.start() {
        // Broadcast every 8 base periods = 256 ms.
        return call Timer.start(8);
    }

    command result_t StdControl.stop() {
        return call Timer.stop();
    }

    event result_t Timer.fired() {
        counter++;
        msg[0] = (uint8_t)(counter & 0xFF);
        msg[1] = (uint8_t)(counter >> 8);
        call SendMsg.send(TOS_BCAST_ADDR, AM_COUNT_RCTL, 2, msg);
        return SUCCESS;
    }

    event result_t ReceiveMsg.receive(uint16_t addr, uint8_t am_type, uint8_t * payload, uint8_t length) {
        if (am_type == AM_COUNT_RCTL && length >= 2) {
            call Leds.set((uint8_t)(payload[0] & 7));
        }
        return SUCCESS;
    }

    event result_t SendMsg.sendDone(result_t success) {
        return SUCCESS;
    }
}

configuration RadioCountToLeds {
}
implementation {
    components Main, RadioCountToLedsM, TimerC, LedsC, RadioC;
    Main.StdControl -> TimerC.StdControl;
    Main.StdControl -> RadioC.StdControl;
    Main.StdControl -> RadioCountToLedsM.StdControl;
    RadioCountToLedsM.Timer -> TimerC.Timer0;
    RadioCountToLedsM.Leds -> LedsC.Leds;
    RadioCountToLedsM.SendMsg -> RadioC.SendMsg;
    RadioCountToLedsM.ReceiveMsg -> RadioC.ReceiveMsg;
}
