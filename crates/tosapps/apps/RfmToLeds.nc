// RfmToLeds: display the first payload byte of received IntMsg
// broadcasts on the LEDs.

enum {
    AM_INTMSG = 4,
};

module RfmToLedsM {
    provides interface StdControl;
    uses interface ReceiveMsg;
    uses interface Leds;
}
implementation {
    command result_t StdControl.init() {
        return SUCCESS;
    }

    command result_t StdControl.start() {
        return SUCCESS;
    }

    command result_t StdControl.stop() {
        return SUCCESS;
    }

    event result_t ReceiveMsg.receive(uint16_t addr, uint8_t am_type, uint8_t * payload, uint8_t length) {
        if (am_type == AM_INTMSG && length >= 1) {
            call Leds.set((uint8_t)(payload[0] & 7));
        }
        return SUCCESS;
    }
}

configuration RfmToLeds {
}
implementation {
    components Main, RfmToLedsM, RadioC, LedsC;
    Main.StdControl -> RadioC.StdControl;
    Main.StdControl -> RfmToLedsM.StdControl;
    RfmToLedsM.ReceiveMsg -> RadioC.ReceiveMsg;
    RfmToLedsM.Leds -> LedsC.Leds;
}
