// SenseToRfm: sample the photo sensor periodically and broadcast each
// reading over the radio.

enum {
    AM_SENSEMSG = 12,
};

module SenseToRfmM {
    provides interface StdControl;
    uses interface Timer;
    uses interface ADC;
    uses interface SendMsg;
}
implementation {
    uint8_t msg[2];

    command result_t StdControl.init() {
        return SUCCESS;
    }

    command result_t StdControl.start() {
        // Sample every 8 base periods = 256 ms.
        return call Timer.start(8);
    }

    command result_t StdControl.stop() {
        return call Timer.stop();
    }

    event result_t Timer.fired() {
        call ADC.getData();
        return SUCCESS;
    }

    event result_t ADC.dataReady(uint16_t data) {
        msg[0] = (uint8_t)(data & 0xFF);
        msg[1] = (uint8_t)(data >> 8);
        call SendMsg.send(TOS_BCAST_ADDR, AM_SENSEMSG, 2, msg);
        return SUCCESS;
    }

    event result_t SendMsg.sendDone(result_t success) {
        return SUCCESS;
    }
}

configuration SenseToRfm {
}
implementation {
    components Main, SenseToRfmM, TimerC, PhotoC, RadioC;
    Main.StdControl -> TimerC.StdControl;
    Main.StdControl -> RadioC.StdControl;
    Main.StdControl -> SenseToRfmM.StdControl;
    SenseToRfmM.Timer -> TimerC.Timer0;
    SenseToRfmM.ADC -> PhotoC.ADC;
    SenseToRfmM.SendMsg -> RadioC.SendMsg;
}
