// Surge: the multihop data-collection benchmark. Base-station beacons
// (AM_SURGECMD) establish each node's hop count; nodes with a route
// periodically sample the sensor and broadcast readings (AM_SURGEMSG),
// and forward readings heard from deeper nodes toward the base.
//
// Reading payload: src lo, src hi, seq lo, seq hi, reading lo,
// reading hi, hops. Beacon payload: origin lo, origin hi, hops.

enum {
    AM_SURGEMSG = 17,
    AM_SURGECMD = 18,
    SURGE_NO_ROUTE = 0xFF,
};

module SurgeM {
    provides interface StdControl;
    uses interface Timer;
    uses interface ADC;
    uses interface SendMsg;
    uses interface ReceiveMsg;
    uses interface Leds;
}
implementation {
    uint8_t my_hops;
    uint16_t seq;
    uint8_t reading_msg[7];
    uint8_t fwd_msg[7];
    uint8_t fwd_busy;
    uint8_t beacon_msg[3];

    command result_t StdControl.init() {
        my_hops = SURGE_NO_ROUTE;
        seq = 0;
        fwd_busy = 0;
        return SUCCESS;
    }

    command result_t StdControl.start() {
        // Sample every 8 base periods = 256 ms.
        return call Timer.start(8);
    }

    command result_t StdControl.stop() {
        return call Timer.stop();
    }

    event result_t Timer.fired() {
        if (my_hops != SURGE_NO_ROUTE) {
            call ADC.getData();
        }
        return SUCCESS;
    }

    event result_t ADC.dataReady(uint16_t data) {
        reading_msg[0] = (uint8_t)(TOS_LOCAL_ADDRESS & 0xFF);
        reading_msg[1] = (uint8_t)(TOS_LOCAL_ADDRESS >> 8);
        reading_msg[2] = (uint8_t)(seq & 0xFF);
        reading_msg[3] = (uint8_t)(seq >> 8);
        reading_msg[4] = (uint8_t)(data & 0xFF);
        reading_msg[5] = (uint8_t)(data >> 8);
        reading_msg[6] = my_hops;
        if (call SendMsg.send(TOS_BCAST_ADDR, AM_SURGEMSG, 7, reading_msg) == SUCCESS) {
            seq++;
            call Leds.set((uint8_t)(seq & 7));
        }
        return SUCCESS;
    }

    task void forward() {
        call SendMsg.send(TOS_BCAST_ADDR, AM_SURGEMSG, 7, fwd_msg);
        fwd_busy = 0;
    }

    task void rebroadcast_beacon() {
        call SendMsg.send(TOS_BCAST_ADDR, AM_SURGECMD, 3, beacon_msg);
    }

    event result_t ReceiveMsg.receive(uint16_t addr, uint8_t am_type, uint8_t * payload, uint8_t length) {
        uint8_t i;
        uint8_t h;
        if (am_type == AM_SURGECMD && length >= 3) {
            h = payload[2];
            if ((uint8_t)(h + 1) < my_hops) {
                my_hops = (uint8_t)(h + 1);
                beacon_msg[0] = payload[0];
                beacon_msg[1] = payload[1];
                beacon_msg[2] = my_hops;
                post rebroadcast_beacon();
            }
        }
        if (am_type == AM_SURGEMSG && length >= 7) {
            // Forward readings from nodes at least as deep as we are.
            if (my_hops != SURGE_NO_ROUTE && my_hops <= payload[6] && fwd_busy == 0) {
                fwd_busy = 1;
                for (i = 0; i < 7; i++) {
                    fwd_msg[i] = payload[i];
                }
                fwd_msg[6] = my_hops;
                post forward();
            }
        }
        return SUCCESS;
    }

    event result_t SendMsg.sendDone(result_t success) {
        return SUCCESS;
    }
}

configuration Surge {
}
implementation {
    components Main, SurgeM, TimerC, PhotoC, RadioC, LedsC;
    Main.StdControl -> TimerC.StdControl;
    Main.StdControl -> RadioC.StdControl;
    Main.StdControl -> SurgeM.StdControl;
    SurgeM.Timer -> TimerC.Timer0;
    SurgeM.ADC -> PhotoC.ADC;
    SurgeM.SendMsg -> RadioC.SendMsg;
    SurgeM.ReceiveMsg -> RadioC.ReceiveMsg;
    SurgeM.Leds -> LedsC.Leds;
}
