// TestTimeStamping: echo timestamp requests. Each received request is
// answered with the original two payload bytes plus the hardware tick
// counter captured at reception time.

enum {
    AM_TIMESTAMP = 13,
};

module TestTimeStampingM {
    provides interface StdControl;
    uses interface ReceiveMsg;
    uses interface SendMsg;
}
implementation {
    uint8_t echo[4];

    command result_t StdControl.init() {
        return SUCCESS;
    }

    command result_t StdControl.start() {
        return SUCCESS;
    }

    command result_t StdControl.stop() {
        return SUCCESS;
    }

    event result_t ReceiveMsg.receive(uint16_t addr, uint8_t am_type, uint8_t * payload, uint8_t length) {
        uint16_t now;
        if (am_type == AM_TIMESTAMP && length >= 2) {
            // Capture the free-running hardware tick counter.
            now = __hw_read16(0xF014);
            echo[0] = payload[0];
            echo[1] = payload[1];
            echo[2] = (uint8_t)(now & 0xFF);
            echo[3] = (uint8_t)(now >> 8);
            call SendMsg.send(TOS_BCAST_ADDR, AM_TIMESTAMP, 4, echo);
        }
        return SUCCESS;
    }

    event result_t SendMsg.sendDone(result_t success) {
        return SUCCESS;
    }
}

configuration TestTimeStamping {
}
implementation {
    components Main, TestTimeStampingM, RadioC;
    Main.StdControl -> RadioC.StdControl;
    Main.StdControl -> TestTimeStampingM.StdControl;
    TestTimeStampingM.ReceiveMsg -> RadioC.ReceiveMsg;
    TestTimeStampingM.SendMsg -> RadioC.SendMsg;
}
