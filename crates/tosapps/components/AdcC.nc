// Split-phase ADC sampling over the 0xF020 conversion engine, with the
// PhotoC pass-through alias the paper's sensing apps wire to.

module AdcM {
    provides interface ADC;
}
implementation {
    command result_t ADC.getData() {
        __hw_write16(0xF020, 1);
        return SUCCESS;
    }

    interrupt(ADC) void conversion_done() {
        signal ADC.dataReady(__hw_read16(0xF022));
    }
}

configuration AdcC {
    provides interface ADC;
}
implementation {
    components AdcM;
    ADC = AdcM.ADC;
}

// The photo sensor is a pass-through to the shared conversion engine.
configuration PhotoC {
    provides interface ADC;
}
implementation {
    components AdcM;
    ADC = AdcM.ADC;
}
