// The hardware clock: timer 0 programmed through its MMIO registers,
// its compare-match interrupt re-signaled as the Clock.fire event.

module ClockC {
    provides interface StdControl;
    provides interface Clock;
}
implementation {
    command result_t StdControl.init() {
        return SUCCESS;
    }

    command result_t StdControl.start() {
        return SUCCESS;
    }

    command result_t StdControl.stop() {
        __hw_write16(0xF010, 0);
        return SUCCESS;
    }

    command result_t Clock.setRate(uint16_t ticks) {
        __hw_write16(0xF012, ticks);
        __hw_write16(0xF010, 1);
        return SUCCESS;
    }

    command uint16_t Clock.readCounter() {
        return __hw_read16(0xF014);
    }

    interrupt(TIMER0) void compare_match() {
        signal Clock.fire();
    }
}
