// The LED register wrapper (bits 0-2 of the 0xF000 register).

module LedsC {
    provides interface Leds;
}
implementation {
    command result_t Leds.set(uint8_t value) {
        __hw_write8(0xF000, (uint8_t)(value & 7));
        return SUCCESS;
    }

    command uint8_t Leds.get() {
        return __hw_read8(0xF000);
    }
}
