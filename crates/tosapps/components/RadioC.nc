// The active-message radio stack: CRC-framed byte radio with
// double-buffered receive and interrupt-driven transmit.
//
// On-air frame (byte-compatible with `AmPacket::frame_bytes` in the
// simulation harness): sync 0x7E, addr lo, addr hi, AM type, group,
// payload length, payload bytes, CRC lo, CRC hi. The CRC-CCITT runs
// over everything between the sync byte and the CRC trailer.
//
// The receive interrupt does only per-byte bookkeeping (the handler
// must fit inside one 832-cycle byte time even when safety-checked);
// CRC verification and dispatch run from a posted task while the
// second buffer absorbs the next frame.

module RadioM {
    provides interface StdControl;
    provides interface SendMsg;
    provides interface ReceiveMsg;
}
implementation {
    enum {
        RXS_IDLE = 0,
        RXS_HEADER = 1,
        RXS_PAYLOAD = 2,
        RXS_CRC = 3,
    };

    // ---- receive path ----
    uint8_t rx_state;
    uint8_t rx_pos;
    uint8_t rx_len;
    uint8_t rx_hdr[5];
    uint8_t rx_crc_lo;
    uint8_t rx_buf_a[TOSH_DATA_LENGTH];
    uint8_t rx_buf_b[TOSH_DATA_LENGTH];
    uint8_t fill_b;

    // Latched metadata of the frame awaiting delivery.
    uint16_t r_addr;
    uint16_t r_crc;
    uint8_t r_type;
    uint8_t r_group;
    uint8_t r_len;
    uint8_t r_from_b;
    uint8_t r_pending;

    // ---- transmit path ----
    uint8_t tx_frame[32];
    uint8_t tx_len;
    uint8_t tx_pos;
    uint8_t tx_active;

    uint16_t crc_step(uint16_t crc, uint8_t b) {
        uint8_t i;
        crc = (uint16_t)(crc ^ ((uint16_t)b << 8));
        for (i = 0; i < 8; i++) {
            if (crc & 0x8000) {
                crc = (uint16_t)((crc << 1) ^ 0x1021);
            } else {
                crc = (uint16_t)(crc << 1);
            }
        }
        return crc;
    }

    command result_t StdControl.init() {
        rx_state = RXS_IDLE;
        fill_b = 0;
        r_pending = 0;
        tx_active = 0;
        return SUCCESS;
    }

    command result_t StdControl.start() {
        __hw_write16(0xF030, 1);
        return SUCCESS;
    }

    command result_t StdControl.stop() {
        __hw_write16(0xF030, 0);
        return SUCCESS;
    }

    command result_t SendMsg.send(uint16_t addr, uint8_t am_type, uint8_t length, uint8_t * data) {
        uint8_t i;
        uint16_t c;
        uint8_t was_active;
        if (length > TOSH_DATA_LENGTH) {
            return FAIL;
        }
        was_active = 0;
        atomic {
            if (tx_active) {
                was_active = 1;
            } else {
                tx_active = 1;
            }
        }
        if (was_active) {
            return FAIL;
        }
        tx_frame[0] = 0x7E;
        tx_frame[1] = (uint8_t)(addr & 0xFF);
        tx_frame[2] = (uint8_t)(addr >> 8);
        tx_frame[3] = am_type;
        tx_frame[4] = TOS_AM_GROUP;
        tx_frame[5] = length;
        for (i = 0; i < length; i++) {
            tx_frame[(uint8_t)(6 + i)] = data[i];
        }
        c = 0;
        for (i = 1; i < (uint8_t)(6 + length); i++) {
            c = crc_step(c, tx_frame[i]);
        }
        tx_frame[(uint8_t)(6 + length)] = (uint8_t)(c & 0xFF);
        tx_frame[(uint8_t)(7 + length)] = (uint8_t)(c >> 8);
        atomic {
            tx_len = (uint8_t)(8 + length);
            tx_pos = 1;
        }
        __hw_write8(0xF032, tx_frame[0]);
        return SUCCESS;
    }

    task void send_done() {
        signal SendMsg.sendDone(SUCCESS);
    }

    interrupt(RADIO_TX) void byte_sent() {
        if (tx_active) {
            if (tx_pos < tx_len) {
                __hw_write8(0xF032, tx_frame[tx_pos]);
                tx_pos++;
            } else {
                tx_active = 0;
                post send_done();
            }
        }
    }

    task void deliver() {
        uint16_t c;
        uint16_t want;
        uint16_t addr;
        uint8_t am_type;
        uint8_t grp;
        uint8_t len;
        uint8_t from_b;
        uint8_t i;
        atomic {
            addr = r_addr;
            want = r_crc;
            am_type = r_type;
            grp = r_group;
            len = r_len;
            from_b = r_from_b;
        }
        c = 0;
        c = crc_step(c, (uint8_t)(addr & 0xFF));
        c = crc_step(c, (uint8_t)(addr >> 8));
        c = crc_step(c, am_type);
        c = crc_step(c, grp);
        c = crc_step(c, len);
        for (i = 0; i < len; i++) {
            if (from_b) {
                c = crc_step(c, rx_buf_b[i]);
            } else {
                c = crc_step(c, rx_buf_a[i]);
            }
        }
        if (c == want && grp == TOS_AM_GROUP) {
            if (addr == TOS_BCAST_ADDR || addr == TOS_LOCAL_ADDRESS) {
                if (from_b) {
                    signal ReceiveMsg.receive(addr, am_type, rx_buf_b, len);
                } else {
                    signal ReceiveMsg.receive(addr, am_type, rx_buf_a, len);
                }
            }
        }
        atomic {
            r_pending = 0;
        }
    }

    interrupt(RADIO_RX) void byte_received() {
        uint8_t b;
        b = __hw_read8(0xF034);
        if (rx_state == RXS_IDLE) {
            if (b == 0x7E) {
                rx_state = RXS_HEADER;
                rx_pos = 0;
            }
        } else if (rx_state == RXS_HEADER) {
            if (rx_pos < 5) {
                rx_hdr[rx_pos] = b;
                rx_pos++;
            }
            if (rx_pos >= 5) {
                rx_len = rx_hdr[4];
                if (rx_len > TOSH_DATA_LENGTH) {
                    // Oversized frame: drop it.
                    rx_state = RXS_IDLE;
                } else {
                    rx_pos = 0;
                    if (rx_len == 0) {
                        rx_state = RXS_CRC;
                    } else {
                        rx_state = RXS_PAYLOAD;
                    }
                }
            }
        } else if (rx_state == RXS_PAYLOAD) {
            if (rx_pos < rx_len) {
                if (fill_b) {
                    rx_buf_b[rx_pos] = b;
                } else {
                    rx_buf_a[rx_pos] = b;
                }
                rx_pos++;
            }
            if (rx_pos >= rx_len) {
                rx_state = RXS_CRC;
                rx_pos = 0;
            }
        } else {
            if (rx_pos == 0) {
                rx_crc_lo = b;
                rx_pos = 1;
            } else {
                if (r_pending == 0) {
                    // Latch the frame and swap fill buffers; if the
                    // previous frame is still being delivered, drop
                    // this one (classic buffer-starved behaviour).
                    r_crc = (uint16_t)(rx_crc_lo | ((uint16_t)b << 8));
                    r_addr = (uint16_t)(rx_hdr[0] | ((uint16_t)rx_hdr[1] << 8));
                    r_type = rx_hdr[2];
                    r_group = rx_hdr[3];
                    r_len = rx_len;
                    r_from_b = fill_b;
                    fill_b = (uint8_t)(fill_b ^ 1);
                    r_pending = 1;
                    post deliver();
                }
                rx_state = RXS_IDLE;
            }
        }
    }
}

configuration RadioC {
    provides interface StdControl;
    provides interface SendMsg;
    provides interface ReceiveMsg;
}
implementation {
    components RadioM;
    StdControl = RadioM.StdControl;
    SendMsg = RadioM.SendMsg;
    ReceiveMsg = RadioM.ReceiveMsg;
}
