// Virtualized timers multiplexed onto the hardware clock: the library's
// miniature of TinyOS 1.x TimerC. Two logical timers tick in units of
// the 32 ms base period (TIMER_BASE_TICKS hardware ticks of 32 cycles
// at 4 MHz).

enum {
    TIMER_BASE_TICKS = 4000,
};

module TimerM {
    provides interface StdControl;
    provides interface Timer as Timer0;
    provides interface Timer as Timer1;
    uses interface Clock;
}
implementation {
    uint16_t period0;
    uint16_t period1;
    uint16_t elapsed0;
    uint16_t elapsed1;
    uint8_t running0;
    uint8_t running1;

    command result_t StdControl.init() {
        running0 = 0;
        running1 = 0;
        return SUCCESS;
    }

    command result_t StdControl.start() {
        return call Clock.setRate(TIMER_BASE_TICKS);
    }

    command result_t StdControl.stop() {
        running0 = 0;
        running1 = 0;
        return SUCCESS;
    }

    command result_t Timer0.start(uint16_t interval) {
        if (interval == 0) {
            return FAIL;
        }
        atomic {
            period0 = interval;
            elapsed0 = 0;
            running0 = 1;
        }
        return SUCCESS;
    }

    command result_t Timer0.stop() {
        atomic {
            running0 = 0;
        }
        return SUCCESS;
    }

    command result_t Timer1.start(uint16_t interval) {
        if (interval == 0) {
            return FAIL;
        }
        atomic {
            period1 = interval;
            elapsed1 = 0;
            running1 = 1;
        }
        return SUCCESS;
    }

    command result_t Timer1.stop() {
        atomic {
            running1 = 0;
        }
        return SUCCESS;
    }

    event result_t Clock.fire() {
        if (running0) {
            elapsed0++;
            if (elapsed0 >= period0) {
                elapsed0 = 0;
                signal Timer0.fired();
            }
        }
        if (running1) {
            elapsed1++;
            if (elapsed1 >= period1) {
                elapsed1 = 0;
                signal Timer1.fired();
            }
        }
        return SUCCESS;
    }
}

configuration TimerC {
    provides interface StdControl;
    provides interface Timer as Timer0;
    provides interface Timer as Timer1;
}
implementation {
    components TimerM, ClockC;
    TimerM.Clock -> ClockC.Clock;
    StdControl = TimerM.StdControl;
    Timer0 = TimerM.Timer0;
    Timer1 = TimerM.Timer1;
}
