// The debug UART: a byte transmitter with a small software queue,
// drained by the UART transmit-complete interrupt.

enum {
    UART_QUEUE_LEN = 16,
};

module UartM {
    provides interface StdControl;
    provides interface Uart;
}
implementation {
    uint8_t queue[UART_QUEUE_LEN];
    uint8_t head;
    uint8_t count;
    uint8_t busy;

    command result_t StdControl.init() {
        head = 0;
        count = 0;
        busy = 0;
        return SUCCESS;
    }

    command result_t StdControl.start() {
        return SUCCESS;
    }

    command result_t StdControl.stop() {
        return SUCCESS;
    }

    command result_t Uart.put(uint8_t data) {
        uint8_t action;
        action = 0;
        atomic {
            if (busy == 0) {
                busy = 1;
                action = 1;
            } else {
                if (count < UART_QUEUE_LEN) {
                    queue[(uint8_t)((head + count) % UART_QUEUE_LEN)] = data;
                    count++;
                    action = 2;
                }
            }
        }
        if (action == 1) {
            __hw_write8(0xF040, data);
        }
        return action ? SUCCESS : FAIL;
    }

    command uint8_t Uart.pending() {
        uint8_t n;
        atomic {
            n = (uint8_t)(busy + count);
        }
        return n;
    }

    interrupt(UART) void byte_done() {
        uint8_t data;
        uint8_t have;
        have = 0;
        data = 0;
        if (count > 0) {
            data = queue[head];
            head = (uint8_t)((head + 1) % UART_QUEUE_LEN);
            count--;
            have = 1;
        }
        if (have) {
            __hw_write8(0xF040, data);
        } else {
            busy = 0;
        }
    }
}

configuration UartC {
    provides interface StdControl;
    provides interface Uart;
}
implementation {
    components UartM;
    StdControl = UartM.StdControl;
    Uart = UartM.Uart;
}
