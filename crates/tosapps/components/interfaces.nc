// The interface vocabulary of the TinyOS-lite component library.
// Faithful miniatures of the TinyOS 1.x interfaces the paper's twelve
// benchmark applications are built from.

interface StdControl {
    command result_t init();
    command result_t start();
    command result_t stop();
}

// The raw hardware clock (timer 0), one tick = 32 CPU cycles.
interface Clock {
    command result_t setRate(uint16_t ticks);
    command uint16_t readCounter();
    event result_t fire();
}

// A virtualized timer: interval is in clock base periods (32 ms each).
interface Timer {
    command result_t start(uint16_t interval);
    command result_t stop();
    event result_t fired();
}

interface Leds {
    command result_t set(uint8_t value);
    command uint8_t get();
}

// Split-phase analog sampling (the paper's Photo/Temp sensors).
interface ADC {
    command result_t getData();
    event result_t dataReady(uint16_t data);
}

// Active-message transmission. `send` copies the payload synchronously;
// `sendDone` is signaled from task context when the frame is on the air.
interface SendMsg {
    command result_t send(uint16_t addr, uint8_t am_type, uint8_t length, uint8_t * data);
    event result_t sendDone(result_t success);
}

// Active-message reception. Payload points into the radio stack's
// double-buffered receive storage and is valid for the duration of the
// event.
interface ReceiveMsg {
    event result_t receive(uint16_t addr, uint8_t am_type, uint8_t * payload, uint8_t length);
}

// Byte-stream debug UART with a small transmit queue.
interface Uart {
    command result_t put(uint8_t data);
    command uint8_t pending();
}
