// Shared TinyOS-lite constants. This header is merged into every
// application build (nesC-lite headers are global), so it holds only
// enums -- a global variable here would cost SRAM in every app.

enum {
    TOS_BCAST_ADDR = 0xFFFF,
    TOS_LOCAL_ADDRESS = 1,
    TOS_AM_GROUP = 0x7D,
    // Maximum active-message payload, matching the buffers in RadioC.
    TOSH_DATA_LENGTH = 24,
};
