//! Per-application simulation contexts: the "reasonable sensor network
//! context" §3.4 says each app was run in.
//!
//! A context sets the node's sensor waveform and schedules radio traffic
//! (built with the same framing and CRC as the in-language radio stack).

use mcu::devices::Waveform;
use mcu::Machine;

/// An active-message packet to inject into a node's receiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AmPacket {
    /// Destination address field.
    pub addr: u16,
    /// AM type.
    pub am_type: u8,
    /// Group byte.
    pub group: u8,
    /// Payload.
    pub payload: Vec<u8>,
}

impl AmPacket {
    /// A broadcast packet of the given type.
    pub fn broadcast(am_type: u8, payload: Vec<u8>) -> AmPacket {
        AmPacket {
            addr: 0xFFFF,
            am_type,
            group: 0x7D,
            payload,
        }
    }

    /// Serializes to the on-air frame: sync, header, payload, CRC —
    /// byte-compatible with `RadioM` in `components/RadioC.nc`.
    pub fn frame_bytes(&self) -> Vec<u8> {
        let mut out = vec![0x7E];
        let mut crc: u16 = 0;
        let push = |out: &mut Vec<u8>, crc: &mut u16, b: u8| {
            *crc = crc_byte(*crc, b);
            out.push(b);
        };
        push(&mut out, &mut crc, self.addr as u8);
        push(&mut out, &mut crc, (self.addr >> 8) as u8);
        push(&mut out, &mut crc, self.am_type);
        push(&mut out, &mut crc, self.group);
        push(&mut out, &mut crc, self.payload.len() as u8);
        for &b in &self.payload {
            push(&mut out, &mut crc, b);
        }
        out.push(crc as u8);
        out.push((crc >> 8) as u8);
        out
    }
}

/// CRC-CCITT step, identical to `RadioM.crc_byte`.
pub fn crc_byte(mut crc: u16, b: u8) -> u16 {
    crc ^= (b as u16) << 8;
    for _ in 0..8 {
        if crc & 0x8000 != 0 {
            crc = (crc << 1) ^ 0x1021;
        } else {
            crc <<= 1;
        }
    }
    crc
}

/// A scheduled packet arrival.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Injection {
    /// Arrival time of the first byte, in cycles.
    pub at: u64,
    /// The packet.
    pub packet: AmPacket,
}

/// A complete workload context for one application.
#[derive(Debug, Clone, PartialEq)]
pub struct Context {
    /// Simulated duration in seconds (the paper runs three minutes; the
    /// experiment harness scales this).
    pub seconds: u64,
    /// Sensor input.
    pub waveform: Waveform,
    /// Scheduled radio traffic.
    pub injections: Vec<Injection>,
}

impl Context {
    /// A quiet context (no sensor activity beyond a constant, no radio).
    pub fn quiet(seconds: u64) -> Context {
        Context {
            seconds,
            waveform: Waveform::Const(512),
            injections: Vec::new(),
        }
    }

    /// Adds periodic broadcasts of `packet` every `period` cycles,
    /// starting at `start`, for the whole duration.
    pub fn with_periodic(
        mut self,
        start: u64,
        period: u64,
        packet: AmPacket,
        clock_hz: u64,
    ) -> Context {
        let end = self.seconds * clock_hz;
        let mut t = start;
        while t < end {
            self.injections.push(Injection {
                at: t,
                packet: packet.clone(),
            });
            t += period;
        }
        self
    }

    /// Duration in cycles for a machine's clock.
    pub fn duration_cycles(&self, clock_hz: u64) -> u64 {
        self.seconds * clock_hz
    }

    /// Applies the context to a machine (waveform + scheduled traffic).
    pub fn apply(&self, m: &mut Machine) {
        m.set_waveform(self.waveform.clone());
        for inj in &self.injections {
            m.inject_rx_bytes(inj.at, &inj.packet.frame_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_has_sync_header_payload_crc() {
        let p = AmPacket::broadcast(4, vec![7]);
        let f = p.frame_bytes();
        assert_eq!(f[0], 0x7E);
        assert_eq!(f[1], 0xFF); // addr lo
        assert_eq!(f[2], 0xFF); // addr hi
        assert_eq!(f[3], 4); // type
        assert_eq!(f[4], 0x7D); // group
        assert_eq!(f[5], 1); // length
        assert_eq!(f[6], 7); // payload
        assert_eq!(f.len(), 9); // + 2 CRC bytes
    }

    #[test]
    fn crc_is_ccitt_like() {
        // Deterministic and byte-order sensitive.
        let a = crc_byte(crc_byte(0, 1), 2);
        let b = crc_byte(crc_byte(0, 2), 1);
        assert_ne!(a, b);
        assert_eq!(a, crc_byte(crc_byte(0, 1), 2));
    }

    #[test]
    fn periodic_injections_fill_duration() {
        let c =
            Context::quiet(2).with_periodic(0, 500_000, AmPacket::broadcast(4, vec![1]), 1_000_000);
        assert_eq!(c.injections.len(), 4);
    }
}
