//! Stage-by-stage walk of the toolchain on one application: how each
//! pass of Figure 1 changes the check population and the footprint.
//!
//! Run with: `cargo run --release --example optimization_pipeline`

use backend::{compile, BackendOptions};
use ccured::{cure, CureOptions};
use cxprop::{CxpropOptions, InlineOptions};
use mcu::Profile;

fn measure(program: &tcil::Program, label: &str) {
    let image = compile(program, Profile::mica2(), &BackendOptions::default()).expect("compile");
    println!(
        "{label:<34} {:>6} B code {:>5} B sram {:>4} checks in IR {:>4} in binary",
        image.code_bytes(),
        image.sram_bytes(),
        program.count_checks(),
        image.surviving_checks()
    );
}

fn main() {
    let spec = tosapps::spec("Oscilloscope_Mica2").expect("known app");
    // The session's cached frontend artifact: this walk clones the
    // lowered program out of it, exactly as every grid build does.
    let session = safe_tinyos::BuildSession::new();
    let artifact = session.frontend(&spec).expect("nesc");
    println!(
        "racy variables (nesC report): {:?}\n",
        artifact.output().report.racy.len()
    );

    let mut program = artifact.program();
    measure(&program, "after nesC (unsafe)");

    let stats = cure(
        &mut program,
        &CureOptions {
            local_optimize: false,
            ..Default::default()
        },
    )
    .expect("cure");
    measure(&program, "after CCured (no local opt)");
    println!(
        "  pointer kinds: {:?}; locks inserted: {}",
        stats.kinds, stats.locks_inserted
    );

    ccured::optimize::optimize_checks(&mut program);
    measure(&program, "after CCured local optimizer");

    let inlined = cxprop::inline::run(&mut program, &InlineOptions::default());
    measure(&program, "after source-level inlining");
    println!("  {inlined} call sites expanded");

    let cx = cxprop::optimize(
        &mut program,
        &CxpropOptions {
            inline: false,
            ..Default::default()
        },
    );
    ccured::errmsg::prune_unused_messages(&mut program);
    measure(&program, "after cXprop");
    println!(
        "  {} checks removed, {} branches folded, {} dead functions, {} dead globals, {} atomics demoted",
        cx.engine.checks_removed,
        cx.engine.branches_folded,
        cx.dce.functions_removed,
        cx.dce.globals_removed,
        cx.atomics.demoted
    );

    // The same walk as one pass-manager pipeline, from a spec string,
    // with every pass individually timed.
    let pipeline = safe_tinyos::Pipeline::parse("cure|inline|cxprop|prune").expect("valid spec");
    let build = pipeline
        .build(artifact.program(), spec.platform.clone())
        .expect("build");
    println!("\nas one pipeline  {pipeline}:");
    for (pass, t) in build.metrics.pass_times.iter() {
        println!("  {pass:<8} {:>7.2} ms", t.as_secs_f64() * 1e3);
    }
    println!(
        "  => {} B code, {} of {} checks survive",
        build.metrics.code_bytes, build.metrics.checks_surviving, build.metrics.checks_inserted
    );
}
