//! Quickstart: compile the Blink application through the full Safe
//! TinyOS toolchain, run it on the simulated mote, and print the metrics
//! the paper's evaluation reports.
//!
//! Run with: `cargo run --release --example quickstart`

use safe_tinyos::{simulate, BuildConfig, BuildSession};

fn main() {
    let spec = tosapps::spec("BlinkTask_Mica2").expect("known app");
    // One session: the frontend compiles Blink once, every configuration
    // below reuses the cached artifact.
    let session = BuildSession::new();

    println!("== Safe TinyOS quickstart: {} ==\n", spec.name);
    for config in [
        BuildConfig::unsafe_baseline(),
        BuildConfig::safe_flid(),
        BuildConfig::safe_flid_inline_cxprop(),
    ] {
        let build = session.build(&spec, &config).expect("build");
        let run = simulate(&build, &spec, 5);
        println!(
            "{:<26} code {:>5} B  sram {:>4} B  checks {:>3} -> {:<3} duty {:>5.2}%  leds {}",
            config.name,
            build.metrics.flash_bytes,
            build.metrics.sram_bytes,
            build.metrics.checks_inserted,
            build.metrics.checks_surviving,
            run.duty_cycle_percent,
            run.led_transitions,
        );
    }

    // The host-side FLID decompression table (free on the node).
    let build = session
        .build(&spec, &BuildConfig::safe_flid())
        .expect("build");
    println!("\nFLID table sample (host side):");
    for (flid, msg) in build.image.flid_table.iter().take(5) {
        println!("  {flid:>4} -> {msg}");
    }

    println!(
        "\n(4 builds, {} frontend compile — the session cached the artifact)",
        session.frontend_compiles()
    );
}
