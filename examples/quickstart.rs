//! Quickstart: compile the Blink application through the full Safe
//! TinyOS toolchain, run it on the simulated mote, and print the metrics
//! the paper's evaluation reports.
//!
//! Run with: `cargo run --release --example quickstart`

use safe_tinyos::{simulate, BuildRequest, BuildService, Pipeline};

fn main() {
    let spec = tosapps::spec("BlinkTask_Mica2").expect("known app");
    // One service: the frontend compiles Blink once and shared pass
    // prefixes are computed once, however many pipelines run below.
    let service = BuildService::new();

    println!("== Safe TinyOS quickstart: {} ==\n", spec.name);
    let stacks = [
        Pipeline::unsafe_baseline(),
        Pipeline::safe_flid(),
        Pipeline::safe_flid_inline_cxprop(),
    ];
    // The batch API: results come back in request order.
    let requests: Vec<BuildRequest> = stacks
        .iter()
        .map(|p| BuildRequest::new(spec.clone(), p.clone()))
        .collect();
    for (pipeline, build) in stacks.iter().zip(service.submit(requests)) {
        let build = build.expect("build");
        let run = simulate(&build, &spec, 5);
        println!(
            "{:<26} code {:>5} B  sram {:>4} B  checks {:>3} -> {:<3} duty {:>5.2}%  leds {}",
            pipeline.name(),
            build.metrics.flash_bytes,
            build.metrics.sram_bytes,
            build.metrics.checks_inserted,
            build.metrics.checks_surviving,
            run.duty_cycle_percent,
            run.led_transitions,
        );
    }

    // Any other stack is one spec string away (`STOS_PIPELINE` takes
    // the same notation).
    let custom = Pipeline::parse("cure(terse)|cxprop(rounds=1)|prune").expect("valid spec");
    let build = service.build(&spec, &custom).expect("build");
    println!(
        "\ncustom {custom}: code {} B, {} of {} checks survive",
        build.metrics.flash_bytes, build.metrics.checks_surviving, build.metrics.checks_inserted,
    );

    // The host-side FLID decompression table (free on the node). The
    // safe-flid stack already ran above, so this build replays cached
    // pass outputs (see the cache report at the end).
    let build = service.build(&spec, &Pipeline::safe_flid()).expect("build");
    println!("\nFLID table sample (host side):");
    for (flid, msg) in build.image.flid_table.iter().take(5) {
        println!("  {flid:>4} -> {msg}");
    }

    let stats = service.cache_stats();
    println!(
        "\n(5 builds, {} frontend compile; pass cache: {} hits / {} misses)",
        service.session().frontend_compiles(),
        stats.hits(),
        stats.misses(),
    );
}
