//! Quickstart: compile the Blink application through the full Safe
//! TinyOS toolchain, run it on the simulated mote, and print the metrics
//! the paper's evaluation reports.
//!
//! Run with: `cargo run --release --example quickstart`

use safe_tinyos::{simulate, BuildSession, Pipeline};

fn main() {
    let spec = tosapps::spec("BlinkTask_Mica2").expect("known app");
    // One session: the frontend compiles Blink once, every pipeline
    // below reuses the cached artifact.
    let session = BuildSession::new();

    println!("== Safe TinyOS quickstart: {} ==\n", spec.name);
    for pipeline in [
        Pipeline::unsafe_baseline(),
        Pipeline::safe_flid(),
        Pipeline::safe_flid_inline_cxprop(),
    ] {
        let build = session.build(&spec, &pipeline).expect("build");
        let run = simulate(&build, &spec, 5);
        println!(
            "{:<26} code {:>5} B  sram {:>4} B  checks {:>3} -> {:<3} duty {:>5.2}%  leds {}",
            pipeline.name(),
            build.metrics.flash_bytes,
            build.metrics.sram_bytes,
            build.metrics.checks_inserted,
            build.metrics.checks_surviving,
            run.duty_cycle_percent,
            run.led_transitions,
        );
    }

    // Any other stack is one spec string away (`STOS_PIPELINE` takes
    // the same notation).
    let custom = Pipeline::parse("cure(terse)|cxprop(rounds=1)|prune").expect("valid spec");
    let build = session.build(&spec, &custom).expect("build");
    println!(
        "\ncustom {custom}: code {} B, {} of {} checks survive",
        build.metrics.flash_bytes, build.metrics.checks_surviving, build.metrics.checks_inserted,
    );

    // The host-side FLID decompression table (free on the node).
    let build = session.build(&spec, &Pipeline::safe_flid()).expect("build");
    println!("\nFLID table sample (host side):");
    for (flid, msg) in build.image.flid_table.iter().take(5) {
        println!("  {flid:>4} -> {msg}");
    }

    println!(
        "\n(5 builds, {} frontend compile — the session cached the artifact)",
        session.frontend_compiles()
    );
}
