//! What safety buys you: the same buggy sensor app built unsafely
//! silently corrupts a neighbouring variable; built safely it traps with
//! a FLID the host decodes to the faulting source location.
//!
//! Run with: `cargo run --release --example safety_violation`

use backend::{compile, BackendOptions};
use ccured::{cure, CureOptions};
use mcu::{Machine, Profile, RunState};

const BUGGY: &str = "
    uint8_t samples[8];
    uint8_t radio_power = 3;    // the unlucky neighbour in SRAM

    void record(uint8_t * buf, uint8_t n) {
        uint8_t i;
        for (i = 0; i < n; i++) { buf[i] = (uint8_t)(i + 0xA0); }
    }

    void main() {
        // Off-by-32: writes far past the end of `samples`.
        record(samples, 40);
    }
";

fn main() {
    println!("== The bug: record(samples, 40) overruns samples[8] ==\n");

    // Unsafe build.
    let program = tcil::parse_and_lower(BUGGY).expect("parse");
    let image = compile(&program, Profile::mica2(), &BackendOptions::default()).expect("compile");
    let mut m = Machine::new(&image);
    m.run(1_000_000);
    let power = image.find_global_addr("radio_power").expect("symbol");
    println!("unsafe build:  state={:?}", m.state);
    println!(
        "               radio_power was 3, is now {} (silent corruption!)",
        m.ram_peek(power)
    );
    assert_eq!(m.state, RunState::Halted);

    // Safe build.
    let mut program = tcil::parse_and_lower(BUGGY).expect("parse");
    cure(&mut program, &CureOptions::default()).expect("cure");
    let image = compile(&program, Profile::mica2(), &BackendOptions::default()).expect("compile");
    let mut m = Machine::new(&image);
    m.run(1_000_000);
    println!("\nsafe build:    state={:?}", m.state);
    println!(
        "               {}",
        m.fault_message().expect("fault message")
    );
    let power = image.find_global_addr("radio_power").expect("symbol");
    println!(
        "               radio_power still {} — the write never happened",
        m.ram_peek(power)
    );
    assert_eq!(m.state, RunState::Faulted);
}
