//! A 100-mote Surge collection fleet on a lossy unit-disk grid under
//! the event-driven fleet simulator: mote 0 is the sink and beacon
//! source, everyone else samples a seeded sensor waveform and forwards
//! readings up the hop-count tree.
//!
//! Run with: `cargo run --release --example surge_fleet`

use safe_tinyos::fleet::{build_fleet, horizon_cycles, sink_report, FleetSpec};
use safe_tinyos::{BuildSession, Pipeline};

fn main() {
    let spec = tosapps::spec("Surge_Mica2").expect("known app");
    let build = BuildSession::new()
        .build(&spec, &Pipeline::safe_flid_inline_cxprop())
        .expect("build");
    println!(
        "Surge image: {} B flash, {} B SRAM, {} checks surviving",
        build.metrics.flash_bytes, build.metrics.sram_bytes, build.metrics.checks_surviving
    );

    // 100 motes on a 10x10 unit-disk grid, 4 simulated seconds, 1%
    // per-byte loss. Boots are staggered by FleetSpec::grid — without
    // that, cycle-synchronized sampling timers collide every reading.
    let fs = FleetSpec::grid(100, 4, 0xF1EE7, mcu::LinkQuality::lossy(10_000));
    let mut fleet = build_fleet(&build, &fs);

    // Churn: power-cycle one mid-grid mote through the middle third of
    // the run; the scheduler drops its in-flight bytes and reboots it.
    let horizon = horizon_cycles(&build, &fs);
    fleet.schedule_power_cycle(50, horizon / 3, Some(horizon / 2));

    let start = std::time::Instant::now();
    fleet.run(horizon);
    let wall = start.elapsed().as_secs_f64();

    let report = sink_report(&fleet);
    let stats = fleet.stats();
    println!(
        "ran {} motes x {} s in {:.2} s wall ({:.0} scheduler pops/sec)",
        fs.motes,
        fs.seconds,
        wall,
        stats.pops as f64 / wall
    );
    println!(
        "sink heard {} of {} offered readings ({:.1}% delivered end-to-end), \
         {} frames decoded, {} CRC rejects",
        report.heard, report.offered, report.delivery_rate_pct, report.frames, report.crc_rejects
    );
    println!(
        "channel: {} tx bytes, {} delivered, {} dropped, {} duplicated, \
         {} reordered, {} dropped while powered off, {} reboots",
        stats.tx_bytes,
        stats.delivered,
        stats.dropped,
        stats.duplicated,
        stats.reordered,
        stats.dropped_offline,
        stats.reboots
    );
    println!(
        "mean duty cycle {:.2}% across the fleet",
        fleet.mean_duty_cycle_percent()
    );
}
