//! A three-node Surge network: the multihop data-collection app running
//! on several simulated motes sharing one radio channel (the Avrora
//! "network of motes" role).
//!
//! Run with: `cargo run --release --example surge_network`

use mcu::net::Network;
use mcu::Machine;
use safe_tinyos::{BuildSession, Pipeline};

fn main() {
    let spec = tosapps::spec("Surge_Mica2").expect("known app");
    let build = BuildSession::new()
        .build(&spec, &Pipeline::safe_flid_inline_cxprop())
        .expect("build");
    println!(
        "Surge image: {} B flash, {} B SRAM, {} checks surviving",
        build.metrics.flash_bytes, build.metrics.sram_bytes, build.metrics.checks_surviving
    );

    // Three identical nodes; node 0 also receives base-station beacons so
    // the routing tree forms.
    let mut nodes = Vec::new();
    for i in 0..3 {
        let mut m = Machine::new(&build.image);
        m.set_waveform(mcu::devices::Waveform::Noise {
            seed: 0x1000 + i,
            min: 200,
            max: 900,
        });
        nodes.push(m);
    }
    // Seed beacons (hops = 0) into node 0 as if a base station were nearby.
    let beacon = tosapps::AmPacket::broadcast(18, vec![0, 0, 0]);
    for k in 0..10 {
        nodes[0].inject_rx_bytes(500_000 + k * 8_000_000, &beacon.frame_bytes());
    }

    let mut net = Network::new(nodes);
    let seconds = 10;
    net.run(seconds * 4_000_000);

    println!("\nafter {seconds}s of simulated network time:");
    for (i, n) in net.nodes.iter().enumerate() {
        println!(
            "  node {i}: state={:?} duty={:.2}% tx_bytes={} rx_bytes={} leds={}",
            n.state,
            n.duty_cycle_percent(),
            n.radio_out.len(),
            n.devices.radio.rx_count,
            n.devices.leds.transitions,
        );
    }
    println!("\nmean duty cycle: {:.2}%", net.mean_duty_cycle_percent());
    let total_tx: usize = net.nodes.iter().map(|n| n.radio_out.len()).sum();
    assert!(total_tx > 0, "the network should carry traffic");
}
