//! Umbrella crate for the Safe TinyOS reproduction workspace.
//!
//! This crate re-exports the individual toolchain crates so that the
//! workspace-level `examples/` and `tests/` can refer to everything through
//! one dependency. See the [`safe_tinyos`] crate for the toolchain driver
//! and `DESIGN.md` at the repository root for the system inventory.

pub use backend;
pub use ccured;
pub use cxprop;
pub use mcu;
pub use nesc;
pub use safe_tinyos;
pub use tcil;
pub use tosapps;
