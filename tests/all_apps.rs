//! Whole-toolchain integration: every benchmark app must build and run
//! under the key pipeline configurations without faulting, and the
//! paper's qualitative relationships must hold per app.

use safe_tinyos::{build_app, simulate, BuildConfig};
use safe_tinyos_suite as _;

#[test]
fn all_apps_build_under_all_fig3_bars() {
    for name in tosapps::APP_NAMES {
        let spec = tosapps::spec(name).unwrap();
        for config in BuildConfig::fig3_bars() {
            let b = build_app(&spec, &config)
                .unwrap_or_else(|e| panic!("{name} / {}: {e}", config.name));
            assert!(b.metrics.code_bytes > 0, "{name} / {}", config.name);
        }
    }
}

#[test]
fn all_apps_run_unsafe_without_faulting() {
    for name in tosapps::APP_NAMES {
        let spec = tosapps::spec(name).unwrap();
        let b = build_app(&spec, &BuildConfig::unsafe_baseline()).unwrap();
        let r = simulate(&b, &spec, 2);
        // Sleeping or mid-burst Running are both healthy end states;
        // Faulted/Halted are not.
        assert!(
            matches!(r.state, mcu::RunState::Sleeping | mcu::RunState::Running),
            "{name}: {:?} (fault {:?})",
            r.state,
            r.fault
        );
    }
}

#[test]
fn all_apps_run_fully_safe_without_traps() {
    // The core soundness claim: correct programs keep working after the
    // full safe pipeline — no false-positive traps.
    for name in tosapps::APP_NAMES {
        let spec = tosapps::spec(name).unwrap();
        let b = build_app(&spec, &BuildConfig::safe_flid_inline_cxprop()).unwrap();
        let r = simulate(&b, &spec, 2);
        assert!(
            matches!(r.state, mcu::RunState::Sleeping | mcu::RunState::Running),
            "{name}: {:?} (fault {:?})",
            r.state,
            r.fault
        );
    }
}

#[test]
fn safe_and_unsafe_builds_behave_equivalently() {
    // Device-level observable behaviour must match between the unsafe
    // baseline and the fully optimized safe build.
    for name in [
        "BlinkTask_Mica2",
        "CntToLedsAndRfm_Mica2",
        "RfmToLeds_Mica2",
    ] {
        let spec = tosapps::spec(name).unwrap();
        let bu = build_app(&spec, &BuildConfig::unsafe_baseline()).unwrap();
        let bs = build_app(&spec, &BuildConfig::safe_flid_inline_cxprop()).unwrap();
        let ru = simulate(&bu, &spec, 3);
        let rs = simulate(&bs, &spec, 3);
        assert_eq!(
            ru.led_transitions, rs.led_transitions,
            "{name} LED behaviour diverged"
        );
        assert_eq!(
            ru.radio_tx_bytes, rs.radio_tx_bytes,
            "{name} radio behaviour diverged"
        );
        assert_eq!(
            ru.uart_bytes, rs.uart_bytes,
            "{name} uart behaviour diverged"
        );
    }
}

#[test]
fn apps_do_observable_work() {
    let cases: &[(&str, fn(&safe_tinyos::SimResult) -> bool, &str)] = &[
        ("BlinkTask_Mica2", |r| r.led_transitions >= 4, "LED toggles"),
        (
            "CntToLedsAndRfm_Mica2",
            |r| r.radio_tx_bytes > 10,
            "radio traffic",
        ),
        ("GenericBase_Mica2", |r| r.uart_bytes > 5, "uart forwarding"),
        ("RfmToLeds_Mica2", |r| r.led_transitions >= 1, "LED display"),
        (
            "Oscilloscope_Mica2",
            |r| r.radio_tx_bytes > 10,
            "sample messages",
        ),
        (
            "SenseToRfm_Mica2",
            |r| r.radio_tx_bytes > 10,
            "sense messages",
        ),
        ("Ident_Mica2", |r| r.radio_tx_bytes > 10, "ident replies"),
        ("TestTimeStamping_Mica2", |r| r.radio_tx_bytes > 5, "echoes"),
        (
            "Surge_Mica2",
            |r| r.radio_tx_bytes > 10,
            "forwarded readings",
        ),
        (
            "HighFrequencySampling_Mica2",
            |r| r.radio_tx_bytes > 20,
            "bulk data",
        ),
        (
            "MicaHWVerify_Mica2",
            |r| r.uart_bytes >= 4,
            "self-test report",
        ),
        (
            "RadioCountToLeds_TelosB",
            |r| r.radio_tx_bytes > 10 && r.led_transitions > 0,
            "count exchange",
        ),
    ];
    for (name, check, what) in cases {
        let spec = tosapps::spec(name).unwrap();
        let b = build_app(&spec, &BuildConfig::unsafe_baseline()).unwrap();
        let r = simulate(&b, &spec, 5);
        assert!(
            check(&r),
            "{name}: expected {what}; leds={} radio={} uart={} state={:?} fault={:?}",
            r.led_transitions,
            r.radio_tx_bytes,
            r.uart_bytes,
            r.state,
            r.fault
        );
    }
}
