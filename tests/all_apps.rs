//! Whole-toolchain integration: every benchmark app must build and run
//! under the key pipeline configurations without faulting, and the
//! paper's qualitative relationships must hold per app. The app ×
//! config sweeps run through the shared [`ExperimentRunner`] so the
//! frontend compiles each app once and the grid parallelizes.

use bench::ExperimentRunner;
use safe_tinyos::{simulate, BuildSession, Pipeline};
use safe_tinyos_suite as _;

#[test]
fn all_apps_build_under_all_fig3_bars() {
    let runner = ExperimentRunner::from_env();
    let bars = Pipeline::fig3_bars();
    let grid = runner.metrics_grid(tosapps::APP_NAMES, &bars);
    for (name, row) in tosapps::APP_NAMES.iter().zip(&grid) {
        for (config, metrics) in bars.iter().zip(row) {
            assert!(metrics.code_bytes > 0, "{name} / {}", config.name());
        }
    }
    assert_eq!(
        runner.session().frontend_compiles(),
        tosapps::APP_NAMES.len(),
        "one frontend compile per app, reused across all bars"
    );
}

#[test]
fn all_apps_run_unsafe_without_faulting() {
    let runner = ExperimentRunner::from_env();
    let configs = [Pipeline::unsafe_baseline()];
    let grid = runner.run_grid(tosapps::APP_NAMES, &configs, |job| {
        simulate(&job.build(job.item), &job.spec, 2)
    });
    for (name, row) in tosapps::APP_NAMES.iter().zip(&grid) {
        let r = &row[0];
        // Sleeping or mid-burst Running are both healthy end states;
        // Faulted/Halted are not.
        assert!(
            matches!(r.state, mcu::RunState::Sleeping | mcu::RunState::Running),
            "{name}: {:?} (fault {:?})",
            r.state,
            r.fault
        );
    }
}

#[test]
fn all_apps_run_fully_safe_without_traps() {
    // The core soundness claim: correct programs keep working after the
    // full safe pipeline — no false-positive traps.
    let runner = ExperimentRunner::from_env();
    let configs = [Pipeline::safe_flid_inline_cxprop()];
    let grid = runner.run_grid(tosapps::APP_NAMES, &configs, |job| {
        simulate(&job.build(job.item), &job.spec, 2)
    });
    for (name, row) in tosapps::APP_NAMES.iter().zip(&grid) {
        let r = &row[0];
        assert!(
            matches!(r.state, mcu::RunState::Sleeping | mcu::RunState::Running),
            "{name}: {:?} (fault {:?})",
            r.state,
            r.fault
        );
    }
}

#[test]
fn safe_and_unsafe_builds_behave_equivalently() {
    // Device-level observable behaviour must match between the unsafe
    // baseline and the fully optimized safe build.
    let runner = ExperimentRunner::from_env();
    let configs = [
        Pipeline::unsafe_baseline(),
        Pipeline::safe_flid_inline_cxprop(),
    ];
    let apps = [
        "BlinkTask_Mica2",
        "CntToLedsAndRfm_Mica2",
        "RfmToLeds_Mica2",
    ];
    let grid = runner.run_grid(&apps, &configs, |job| {
        simulate(&job.build(job.item), &job.spec, 3)
    });
    for (name, row) in apps.iter().zip(&grid) {
        let (ru, rs) = (&row[0], &row[1]);
        assert_eq!(
            ru.led_transitions, rs.led_transitions,
            "{name} LED behaviour diverged"
        );
        assert_eq!(
            ru.radio_tx_bytes, rs.radio_tx_bytes,
            "{name} radio behaviour diverged"
        );
        assert_eq!(
            ru.uart_bytes, rs.uart_bytes,
            "{name} uart behaviour diverged"
        );
    }
}

#[test]
fn apps_do_observable_work() {
    type Check = fn(&safe_tinyos::SimResult) -> bool;
    let cases: &[(&str, Check, &str)] = &[
        ("BlinkTask_Mica2", |r| r.led_transitions >= 4, "LED toggles"),
        (
            "CntToLedsAndRfm_Mica2",
            |r| r.radio_tx_bytes > 10,
            "radio traffic",
        ),
        ("GenericBase_Mica2", |r| r.uart_bytes > 5, "uart forwarding"),
        ("RfmToLeds_Mica2", |r| r.led_transitions >= 1, "LED display"),
        (
            "Oscilloscope_Mica2",
            |r| r.radio_tx_bytes > 10,
            "sample messages",
        ),
        (
            "SenseToRfm_Mica2",
            |r| r.radio_tx_bytes > 10,
            "sense messages",
        ),
        ("Ident_Mica2", |r| r.radio_tx_bytes > 10, "ident replies"),
        ("TestTimeStamping_Mica2", |r| r.radio_tx_bytes > 5, "echoes"),
        (
            "Surge_Mica2",
            |r| r.radio_tx_bytes > 10,
            "forwarded readings",
        ),
        (
            "HighFrequencySampling_Mica2",
            |r| r.radio_tx_bytes > 20,
            "bulk data",
        ),
        (
            "MicaHWVerify_Mica2",
            |r| r.uart_bytes >= 4,
            "self-test report",
        ),
        (
            "RadioCountToLeds_TelosB",
            |r| r.radio_tx_bytes > 10 && r.led_transitions > 0,
            "count exchange",
        ),
    ];
    let session = BuildSession::new();
    for (name, check, what) in cases {
        let spec = tosapps::spec(name).unwrap();
        let b = session.build(&spec, &Pipeline::unsafe_baseline()).unwrap();
        let r = simulate(&b, &spec, 5);
        assert!(
            check(&r),
            "{name}: expected {what}; leds={} radio={} uart={} state={:?} fault={:?}",
            r.led_transitions,
            r.radio_tx_bytes,
            r.uart_bytes,
            r.state,
            r.fault
        );
    }
}
