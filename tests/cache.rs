//! The content-addressed pass cache: correctness and key-normalization
//! invariants. Caching must be purely a speedup — every cached build is
//! byte-identical to an uncached one across the full preset matrix —
//! and the cache key must be canonical: equivalent spec spellings land
//! on one key, non-commutative pass orders land on different keys, and
//! a shared pass-stack prefix is computed exactly once however many
//! pipelines extend it.

use proptest::prelude::*;
use safe_tinyos::{ir_digest, BuildService, BuildSession, CacheKey, Pipeline, PRESET_NAMES};
use safe_tinyos_suite as _;

/// Every deterministic field of a build (stage wall times excluded).
fn fingerprint(m: &safe_tinyos::Metrics) -> String {
    format!(
        "code={} flash={} sram={} inserted={} surviving={} locks={} cure={:?} cxprop={:?}",
        m.code_bytes,
        m.flash_bytes,
        m.sram_bytes,
        m.checks_inserted,
        m.checks_surviving,
        m.locks_inserted,
        m.cure,
        m.cxprop,
    )
}

#[test]
fn cached_builds_match_uncached_across_every_preset_and_app() {
    // The headline soundness claim: with the pass cache on (the
    // default), every preset × app build — image bytes and deposited
    // metrics — is identical to a cache-off build. The cached session
    // is shared across the whole sweep so later cells replay earlier
    // cells' entries, which is exactly the path under test.
    let cached = BuildSession::new();
    let uncached = BuildSession::uncached();
    for app in tosapps::APP_NAMES {
        let spec = tosapps::spec(app).expect("known app");
        for name in PRESET_NAMES {
            let config = Pipeline::preset(name).expect("known preset");
            let hot = cached.build(&spec, &config).expect("cached build");
            let cold = uncached.build(&spec, &config).expect("uncached build");
            assert_eq!(
                hot.image, cold.image,
                "{app}/{name}: cached image diverged from uncached"
            );
            assert_eq!(
                fingerprint(&hot.metrics),
                fingerprint(&cold.metrics),
                "{app}/{name}: cached metrics diverged from uncached"
            );
        }
    }
    // The sweep actually exercised the cache: shared prefixes hit.
    assert!(cached.cache_stats().hits() > 0, "sweep never hit the cache");
}

#[test]
fn equivalent_spec_spellings_normalize_to_one_cache_key() {
    // CacheKey's spec component comes from `Pass::spec()`, which
    // renders options in one fixed order — so a Display-round-tripped
    // spec and a hand-typed equivalent (shuffled option order, extra
    // whitespace) must hash to the very same keys.
    let spec = tosapps::spec("Surge_Mica2").expect("known app");
    let session = BuildSession::new();
    let program = session.frontend(&spec).expect("frontend").program();
    let (digest, _) = ir_digest(&program);

    let canonical =
        Pipeline::parse("cure(flid,noopt)|inline(max-size=24)|cxprop(domain=intervals)|prune")
            .expect("canonical spec");
    // Display round-trip: parse(spec()) is a fixed point.
    let round = Pipeline::parse(&canonical.spec()).expect("round-trip");
    assert_eq!(canonical.spec(), round.spec());
    // Hand-typed equivalent: whitespace and commutative option order.
    let hand = Pipeline::parse(
        " cure( noopt , flid ) | inline(max-size = 24) | cxprop( domain=intervals ) | prune ",
    )
    .expect("hand-typed spec");
    assert_eq!(canonical.spec(), hand.spec());
    for (a, b) in canonical.passes().iter().zip(hand.passes()) {
        assert_eq!(
            CacheKey::new(digest, a.spec()),
            CacheKey::new(digest, b.spec()),
            "equivalent spellings keyed apart"
        );
    }
    // And every committed preset round-trips through its own spec.
    for name in PRESET_NAMES {
        let preset = Pipeline::preset(name).expect("known preset");
        let reparsed = Pipeline::parse(&preset.spec()).expect("preset spec parses");
        assert_eq!(preset.spec(), reparsed.spec(), "{name} spec not canonical");
    }
}

#[test]
fn non_commutative_pass_order_keys_differently() {
    // Pass order is load-bearing (inline-then-cxprop ≠ cxprop-then-
    // inline), so reordered stacks must NOT share downstream cache
    // entries: only the common cure prefix may hit.
    let a = Pipeline::parse("cure(flid)|inline|cxprop|prune").expect("spec a");
    let b = Pipeline::parse("cure(flid)|cxprop|inline|prune").expect("spec b");
    assert_ne!(a.spec(), b.spec(), "reordering collapsed the specs");

    let spec = tosapps::spec("Surge_Mica2").expect("known app");
    let service = BuildService::new();
    service.build(&spec, &a).expect("build a");
    service.build(&spec, &b).expect("build b");
    let stats = service.cache_stats();
    // Shared prefix: cure computed once, replayed once.
    assert_eq!(stats.get("cure").misses, 1, "cure prefix recomputed");
    assert_eq!(stats.get("cure").hits, 1, "cure prefix never replayed");
    // Divergent tails: same pass names, different input digests — each
    // must compute its own entry rather than alias the other order's.
    for pass in ["inline", "cxprop", "prune"] {
        let c = stats.get(pass);
        assert_eq!(
            c.misses, 2,
            "{pass}: reordered stacks aliased one cache entry"
        );
        assert_eq!(c.hits, 0, "{pass}: unexpected hit across orders");
    }
}

proptest! {
    /// Any shared pass-stack prefix yields exactly one cache miss per
    /// prefix pass: a full stack and a random prefix of it, built
    /// through one shared service in random order, compute each stack
    /// pass once — the prefix passes then hit, the tail passes run only
    /// for the full stack.
    #[test]
    fn shared_prefix_misses_exactly_once(
        split in 1usize..=4,
        app_idx in 0usize..3,
        prefix_first in any::<bool>(),
    ) {
        let apps = ["BlinkTask_Mica2", "RfmToLeds_Mica2", "Surge_Mica2"];
        let stack = ["cure(flid)", "inline", "cxprop", "prune"];
        let full = Pipeline::parse(&stack.join("|")).expect("full spec");
        let prefix = Pipeline::parse(&stack[..split].join("|")).expect("prefix spec");
        let spec = tosapps::spec(apps[app_idx]).expect("known app");

        let service = BuildService::new();
        let (first, second) = if prefix_first { (&prefix, &full) } else { (&full, &prefix) };
        service.build(&spec, first).expect("first build");
        service.build(&spec, second).expect("second build");

        let stats = service.cache_stats();
        for (i, segment) in stack.iter().enumerate() {
            let pass = segment.split('(').next().expect("pass name");
            let c = stats.get(pass);
            prop_assert!(c.misses == 1, "{}: shared prefix recomputed", pass);
            let expected_hits = u64::from(i < split);
            prop_assert!(
                c.hits == expected_hits,
                "{}: expected {} replay(s), saw {}",
                pass,
                expected_hits,
                c.hits
            );
        }
    }
}
