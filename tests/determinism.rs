//! The parallel experiment runner must be a pure speedup: for the full
//! Figure 2 + Figure 3 grids, an 8-worker runner has to produce
//! byte-identical metrics (and therefore byte-identical `BENCH_*.json`
//! payloads) to a serial runner, and the frontend must compile each app
//! exactly once per runner however many configurations the grid spans.
//! The fault-injection campaign adds a stronger case: hundreds of
//! simulated corruption runs per grid cell, whose rendered JSON must
//! still be byte-identical for the same seed.

use bench::{fault, ExperimentRunner};
use safe_tinyos::{CampaignConfig, Metrics, Pipeline};
use safe_tinyos_suite as _;

/// Every deterministic field of the metrics (stage wall times are
/// timing-dependent by nature and excluded).
fn fingerprint(app: &str, config: &str, m: &Metrics) -> String {
    format!(
        "{app}/{config}: code={} flash={} sram={} inserted={} surviving={} locks={} cure={:?} cxprop={:?}",
        m.code_bytes,
        m.flash_bytes,
        m.sram_bytes,
        m.checks_inserted,
        m.checks_surviving,
        m.locks_inserted,
        m.cure,
        m.cxprop,
    )
}

fn full_grid(threads: usize, configs: &[Pipeline]) -> (String, usize) {
    let runner = ExperimentRunner::with_threads(threads);
    let grid = runner.run_grid(tosapps::APP_NAMES, configs, |job| {
        fingerprint(job.spec.name, job.item.name(), &job.build(job.item).metrics)
    });
    let lines: Vec<String> = grid.into_iter().flatten().collect();
    (lines.join("\n"), runner.session().frontend_compiles())
}

#[test]
fn parallel_runner_matches_serial_on_fig2_and_fig3_grids() {
    let mut configs = Pipeline::fig2_stacks();
    configs.extend(Pipeline::fig3_bars());
    configs.push(Pipeline::unsafe_baseline());

    let (serial, serial_compiles) = full_grid(1, &configs);
    let (parallel, parallel_compiles) = full_grid(8, &configs);

    assert_eq!(
        serial, parallel,
        "parallel runner diverged from serial baseline"
    );
    // The frontend artifact cache: one nesc compile per app per harness
    // invocation, never one per grid cell.
    assert_eq!(serial_compiles, tosapps::APP_NAMES.len());
    assert_eq!(parallel_compiles, tosapps::APP_NAMES.len());
}

#[test]
fn fault_campaign_json_matches_serial_under_8_threads() {
    // A scaled-down fault_injection harness run: same seed, serial vs
    // 8 workers, over a 3-app × 4-pipeline × 8-site campaign. The
    // rendered BENCH_fault_injection.json body must be byte-identical.
    let apps = ["BlinkTask_Mica2", "RfmToLeds_Mica2", "Surge_Mica2"];
    let pipelines = fault::default_pipelines();
    let config = CampaignConfig {
        seconds: 2,
        sites: 8,
        seed: 0xC0DE,
    };
    let body_with = |threads: usize| {
        let runner = ExperimentRunner::with_threads(threads);
        let grid = fault::campaign_grid(&runner, &apps, &pipelines, &config);
        fault::render_json(&apps, &pipelines, &config, &grid)
    };
    let serial = body_with(1);
    let parallel = body_with(8);
    assert_eq!(
        serial, parallel,
        "fault campaign diverged between serial and 8-thread runs"
    );
    // The report is non-trivial: the cured stacks detect where the
    // uncured gcc baseline cannot.
    assert!(serial.contains("\"pipeline\":\"gcc\",\"injected\":24,\"detected\":0"));
    assert!(serial.contains("\"flid\":"));
}

#[test]
fn difftest_json_matches_serial_under_8_threads() {
    // A scaled-down differential-oracle run: 6 generated seeds + 2 apps
    // across 3 presets, serial vs 8 workers. The rendered
    // BENCH_difftest.json body must be byte-identical — the oracle is a
    // pure function of (seeds, presets, config), whatever the schedule.
    let seeds: Vec<u64> = (1..=6).collect();
    let apps = ["BlinkTask_Mica2", "SenseToRfm_Mica2"];
    let presets = [
        Pipeline::unsafe_baseline(),
        Pipeline::safe_flid_cxprop(),
        Pipeline::safe_flid_inline_cxprop(),
    ];
    let cfg = safe_tinyos::DiffConfig::default();
    let body_with = |threads: usize| {
        let runner = ExperimentRunner::with_threads(threads);
        let mut reports = bench::diff::seed_reports(&runner, &seeds, &presets, &cfg);
        reports.extend(bench::diff::app_reports(&runner, &apps, &presets, 2, &cfg));
        let tallies = bench::diff::tally(&presets, &reports);
        bench::diff::render_json(&seeds, &apps, &presets, &cfg, 2, &tallies)
    };
    let serial = body_with(1);
    let parallel = body_with(8);
    assert_eq!(
        serial, parallel,
        "differential oracle diverged between serial and 8-thread runs"
    );
    assert!(serial.contains("\"total_miscompiles\":0"), "{serial}");
}

#[test]
fn race_analysis_matches_serial_under_8_threads() {
    // The race analyzer and auto-hardener over every app: the rendered
    // analysis object of BENCH_races.json (diagnostic censuses, section
    // counts, code-size deltas) plus every per-site diagnostic string
    // must be byte-identical between a serial and an 8-worker runner,
    // and every races(fix) build must reach the zero-diagnostic
    // fixpoint.
    let stacks = bench::races::stacks();
    let body_with = |threads: usize| {
        let runner = ExperimentRunner::with_threads(threads);
        let grid = runner.metrics_grid(tosapps::APP_NAMES, &stacks);
        let mut lines = Vec::new();
        for (app, row) in tosapps::APP_NAMES.iter().zip(&grid) {
            for (stack, m) in stacks.iter().zip(row) {
                lines.push(format!("{app}/{}: races={:?}", stack.name(), m.races));
                lines.extend(m.diagnostics.iter().map(|d| format!("  {d}")));
                if stack.spec().contains("races(fix)") {
                    assert!(
                        m.diagnostics.is_empty(),
                        "{app}: races(fix) left diagnostics: {:?}",
                        m.diagnostics
                    );
                }
            }
        }
        lines.join("\n")
    };
    let serial = body_with(1);
    let parallel = body_with(8);
    assert_eq!(
        serial, parallel,
        "race analysis diverged between serial and 8-thread runs"
    );
    // The analyzer stack reported per-site diagnostics (R001 at least).
    assert!(serial.contains("[R001]"), "{serial}");
}

#[test]
fn fleet_json_matches_serial_under_8_threads() {
    // A scaled-down fleet harness run: the mote-count sweep and the
    // network-level fault campaign, serial vs 8 workers. Every pinned
    // field of BENCH_fleet.json is a pure function of the build and the
    // seeds, so the rendered "pinned" object must be byte-identical
    // whatever the thread count or shard order.
    let spec = tosapps::spec("Surge_Mica2").expect("known app");
    let build = bench::must_build(&spec, &safe_tinyos::Pipeline::safe_flid_inline_cxprop());
    let cells = bench::fleet::sweep_cells(&[5, 12], 2);
    let body_with = |threads: usize| {
        let runner = ExperimentRunner::with_threads(threads);
        let rows = bench::fleet::measure(&runner, &build, &cells, 2);
        let campaign = bench::fleet::run_campaign(&runner, &build);
        bench::fleet::pinned_json(&rows, 2, campaign, true)
    };
    let serial = body_with(1);
    let parallel = body_with(8);
    assert_eq!(
        serial, parallel,
        "fleet sweep/campaign diverged between serial and 8-thread runs"
    );
    // Non-trivial: traffic flowed and the campaign reached verdicts.
    assert!(!serial.contains("\"offered\":0"), "{serial}");
    assert!(serial.contains("\"sites\":6"), "{serial}");
}

#[test]
fn campaigns_trigger_identically_under_both_engines() {
    // The block-translation engine must take every observable exit —
    // trap, crash, torn-watch access count — exactly where the
    // interpreter does. Replay a scaled-down fault-injection campaign
    // (rendered JSON byte-compared) and a torn-update campaign (whose
    // watchpoint fires at a 16-bit *access count*, so a single
    // over- or under-counted access moves the verdict) under both
    // engines and require identical results.
    let apps = ["BlinkTask_Mica2", "Surge_Mica2"];
    let pipelines = fault::default_pipelines();
    let config = CampaignConfig {
        seconds: 2,
        sites: 6,
        seed: 0x7E57,
    };
    let torn_stack = bench::races::stacks().remove(0);
    let body_with = |engine: mcu::Engine| {
        mcu::Engine::set_global_override(Some(engine));
        assert_eq!(mcu::Engine::from_env(), engine);
        let runner = ExperimentRunner::with_threads(4);
        let grid = fault::campaign_grid(&runner, &apps, &pipelines, &config);
        let fault_json = fault::render_json(&apps, &pipelines, &config, &grid);
        // The torn campaign targets the first app whose baseline build
        // flags multi-byte globals (enumeration is deterministic).
        let mut torn_lines = Vec::new();
        for app in ["RfmToLeds_Mica2", "Surge_Mica2", "SenseToRfm_Mica2"] {
            let spec = tosapps::spec(app).expect("known app");
            let build = bench::must_build(&spec, &torn_stack);
            let names = safe_tinyos::torn_target_names(&build);
            if names.is_empty() {
                continue;
            }
            let rep = safe_tinyos::run_torn_campaign(&build, &spec, &names, 2, 2);
            torn_lines.extend(
                rep.results
                    .iter()
                    .map(|r| format!("{app}/{} @{}: {:?}", r.site, r.at_cycle, r.verdict)),
            );
            break;
        }
        mcu::Engine::set_global_override(None);
        assert!(
            !torn_lines.is_empty(),
            "no app offered torn targets — campaign exercised nothing"
        );
        (fault_json, torn_lines.join("\n"))
    };
    let (fault_interp, torn_interp) = body_with(mcu::Engine::Interp);
    let (fault_bt, torn_bt) = body_with(mcu::Engine::Bt);
    assert_eq!(
        fault_interp, fault_bt,
        "fault campaign diverged between interp and bt engines"
    );
    assert_eq!(
        torn_interp, torn_bt,
        "torn campaign diverged between interp and bt engines"
    );
    // Non-trivial: the campaign produced real detections.
    assert!(fault_interp.contains("\"detected\""), "{fault_interp}");
}

#[test]
fn shared_pass_cache_is_schedule_independent() {
    // The content-addressed pass cache must be invisible to scheduling:
    // a 1-worker and an 8-worker BuildService over the same batch have
    // to produce byte-identical images AND byte-identical cache
    // counters. Misses are exactly-once per distinct (digest, spec) key
    // (each slot is compute-once), hits are the remaining lookups, and
    // bytes accrue only on misses — so the whole CacheStats snapshot is
    // a pure function of the request set, never of thread interleaving.
    let mut configs = Pipeline::fig2_stacks();
    configs.extend(Pipeline::fig3_bars());
    let batch_with = |threads: usize| {
        let service = safe_tinyos::BuildService::with_threads(threads);
        let requests: Vec<safe_tinyos::BuildRequest> = tosapps::APP_NAMES
            .iter()
            .flat_map(|app| {
                let spec = tosapps::spec(app).expect("known app");
                configs
                    .iter()
                    .map(move |p| safe_tinyos::BuildRequest::new(spec.clone(), p.clone()))
            })
            .collect();
        let images: Vec<mcu::Image> = service
            .submit(requests)
            .into_iter()
            .map(|r| r.expect("batch build failed").image)
            .collect();
        (images, service.cache_stats())
    };
    let (serial_images, serial_stats) = batch_with(1);
    let (parallel_images, parallel_stats) = batch_with(8);
    assert_eq!(
        serial_images, parallel_images,
        "shared-cache batch images diverged between serial and 8-thread runs"
    );
    assert_eq!(
        serial_stats, parallel_stats,
        "cache hit/miss/byte counters diverged with thread count"
    );
    // Non-trivial: the grids overlap (the fig2 stacks and fig3 bars
    // share cure specs per app), so the cache actually deduplicated
    // work rather than computing one entry per grid cell.
    let cure = serial_stats.get("cure");
    assert!(cure.misses > 0, "cure never consulted the cache");
    assert!(
        cure.hits >= cure.misses,
        "fig2+fig3 grids share cure prefixes; expected hits ({}) >= misses ({})",
        cure.hits,
        cure.misses
    );
}

#[test]
fn grid_results_land_in_grid_order() {
    let configs = [Pipeline::unsafe_baseline(), Pipeline::safe_flid()];
    let runner = ExperimentRunner::with_threads(4);
    let grid = runner.run_grid(tosapps::APP_NAMES, &configs, |job| {
        (job.app_index, job.item_index, job.spec.name)
    });
    for (ai, row) in grid.iter().enumerate() {
        assert_eq!(row.len(), configs.len());
        for (ci, &(got_ai, got_ci, name)) in row.iter().enumerate() {
            assert_eq!((got_ai, got_ci), (ai, ci));
            assert_eq!(name, tosapps::APP_NAMES[ai]);
        }
    }
}
