//! The parallel experiment runner must be a pure speedup: for the full
//! Figure 2 + Figure 3 grids, an 8-worker runner has to produce
//! byte-identical metrics (and therefore byte-identical `BENCH_*.json`
//! payloads) to a serial runner, and the frontend must compile each app
//! exactly once per runner however many configurations the grid spans.

use bench::ExperimentRunner;
use safe_tinyos::{Metrics, Pipeline};
use safe_tinyos_suite as _;

/// Every deterministic field of the metrics (stage wall times are
/// timing-dependent by nature and excluded).
fn fingerprint(app: &str, config: &str, m: &Metrics) -> String {
    format!(
        "{app}/{config}: code={} flash={} sram={} inserted={} surviving={} locks={} cure={:?} cxprop={:?}",
        m.code_bytes,
        m.flash_bytes,
        m.sram_bytes,
        m.checks_inserted,
        m.checks_surviving,
        m.locks_inserted,
        m.cure,
        m.cxprop,
    )
}

fn full_grid(threads: usize, configs: &[Pipeline]) -> (String, usize) {
    let runner = ExperimentRunner::with_threads(threads);
    let grid = runner.run_grid(tosapps::APP_NAMES, configs, |job| {
        fingerprint(job.spec.name, job.item.name(), &job.build(job.item).metrics)
    });
    let lines: Vec<String> = grid.into_iter().flatten().collect();
    (lines.join("\n"), runner.session().frontend_compiles())
}

#[test]
fn parallel_runner_matches_serial_on_fig2_and_fig3_grids() {
    let mut configs = Pipeline::fig2_stacks();
    configs.extend(Pipeline::fig3_bars());
    configs.push(Pipeline::unsafe_baseline());

    let (serial, serial_compiles) = full_grid(1, &configs);
    let (parallel, parallel_compiles) = full_grid(8, &configs);

    assert_eq!(
        serial, parallel,
        "parallel runner diverged from serial baseline"
    );
    // The frontend artifact cache: one nesc compile per app per harness
    // invocation, never one per grid cell.
    assert_eq!(serial_compiles, tosapps::APP_NAMES.len());
    assert_eq!(parallel_compiles, tosapps::APP_NAMES.len());
}

#[test]
fn grid_results_land_in_grid_order() {
    let configs = [Pipeline::unsafe_baseline(), Pipeline::safe_flid()];
    let runner = ExperimentRunner::with_threads(4);
    let grid = runner.run_grid(tosapps::APP_NAMES, &configs, |job| {
        (job.app_index, job.item_index, job.spec.name)
    });
    for (ai, row) in grid.iter().enumerate() {
        assert_eq!(row.len(), configs.len());
        for (ci, &(got_ai, got_ci, name)) in row.iter().enumerate() {
            assert_eq!((got_ai, got_ci), (ai, ci));
            assert_eq!(name, tosapps::APP_NAMES[ai]);
        }
    }
}
