//! The differential oracle's regression suite: replays the committed
//! seed corpus across the full preset registry (zero Miscompile
//! verdicts, full cured detection parity), and property-tests the
//! generator itself — every seed must yield a program that type-checks
//! through the ordinary frontend and terminates within the step budget
//! under both the reference and the most aggressive preset.

use proptest::prelude::*;
use safe_tinyos::difftest::{self, DiffConfig, DiffPhase, DiffVerdict};
use safe_tinyos_suite as _;

/// The committed corpus: seed per line, `#` comments.
fn corpus_seeds() -> Vec<u64> {
    let body = include_str!("difftest_corpus.txt");
    body.lines()
        .filter_map(|line| {
            let data = line.split('#').next().unwrap_or("").trim();
            if data.is_empty() {
                None
            } else {
                Some(data.parse().unwrap_or_else(|_| panic!("bad seed `{data}`")))
            }
        })
        .collect()
}

#[test]
fn corpus_replays_clean_across_all_presets() {
    let seeds = corpus_seeds();
    assert!(seeds.len() >= 10, "corpus shrank to {}", seeds.len());
    let presets = bench::diff::default_presets();
    let cfg = DiffConfig::default();
    let runner = bench::ExperimentRunner::from_env();
    let reports = bench::diff::seed_reports(&runner, &seeds, &presets, &cfg);
    for report in &reports {
        for case in &report.cases {
            assert_ne!(
                case.verdict,
                DiffVerdict::Miscompile,
                "corpus regression: {case:?}"
            );
            // Cured presets owe the reference full detection parity
            // (the hardened check-elimination invariant).
            if case.phase == DiffPhase::Injected {
                let cured = presets
                    .iter()
                    .any(|p| p.name() == case.preset && bench::diff::is_cured(p));
                if cured {
                    assert_ne!(
                        case.verdict,
                        DiffVerdict::CheckStrengthReduction,
                        "cured preset lost coverage: {case:?}"
                    );
                }
            }
        }
    }
    // The corpus is not vacuous: it must exercise both comparison
    // phases and at least one trapping reference (uncured presets show
    // those as golden-phase CheckStrengthReduction).
    let all: Vec<_> = reports.iter().flat_map(|r| &r.cases).collect();
    assert!(all.iter().any(|c| c.phase == DiffPhase::Injected));
    assert!(all.iter().any(|c| c.phase == DiffPhase::Golden
        && c.verdict == DiffVerdict::CheckStrengthReduction
        && c.preset == "unsafe"));
}

proptest! {
    /// Generator validity: every seed's program passes the frontend
    /// (parse + type-check) — the generator may never emit source the
    /// toolchain rejects.
    #[test]
    fn every_seed_type_checks(seed in any::<u64>()) {
        difftest::generate_program(seed).unwrap_or_else(|e| {
            panic!("seed {seed}: {e}\n{}", difftest::generate_source(seed))
        });
    }

    /// Termination: under the reference pipeline and under the most
    /// aggressive optimizing preset alike, a generated program halts or
    /// traps within the step budget — never spins.
    #[test]
    fn every_seed_terminates_under_budget(seed in any::<u64>()) {
        let cfg = DiffConfig::default();
        let program = difftest::generate_program(seed).unwrap();
        for pipeline in [
            difftest::reference_pipeline(),
            safe_tinyos::Pipeline::safe_flid_inline_cxprop(),
        ] {
            let build = pipeline
                .build(program.clone(), mcu::Profile::mica2())
                .unwrap();
            let mut m = mcu::Machine::new(&build.image);
            m.run(cfg.budget_cycles);
            prop_assert!(
                m.state != mcu::RunState::Running,
                "seed {} still running after {} cycles under {}",
                seed,
                cfg.budget_cycles,
                pipeline.name()
            );
        }
    }
}
