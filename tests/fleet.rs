//! Fleet simulator integration tests: the event-driven engine must be
//! byte-identical to the lockstep `mcu::net::Network` reference on
//! lossless full-mesh scenarios, and the multihop Surge fleet must
//! actually move data to the sink.

use safe_tinyos::fleet::{
    build_fleet, horizon_cycles, lockstep_matches_event_driven, sink_report, FleetSpec,
};
use safe_tinyos::{BuildSession, Pipeline};

/// Satellite: a 3-mote Surge run produces byte-identical per-mote
/// observations under the event-driven engine with a lossless full-mesh
/// topology (the 2-node channel scenario lives in `mcu::fleet`'s unit
/// tests).
#[test]
fn three_mote_surge_matches_lockstep() {
    let spec = tosapps::spec("Surge_Mica2").unwrap();
    let build = BuildSession::new()
        .build(&spec, &Pipeline::safe_flid_inline_cxprop())
        .unwrap();
    let fleet_spec = FleetSpec::lossless_mesh(3, 3, 0x5EED);
    assert!(
        lockstep_matches_event_driven(&build, &fleet_spec),
        "event-driven fleet diverged from the lockstep reference"
    );
}

/// The realistic configuration: a 9-mote lossy grid still delivers a
/// meaningful fraction of readings to the sink, and lossy links actually
/// drop traffic.
#[test]
fn lossy_grid_fleet_delivers_to_sink() {
    let spec = tosapps::spec("Surge_Mica2").unwrap();
    let build = BuildSession::new()
        .build(&spec, &Pipeline::safe_flid_inline_cxprop())
        .unwrap();
    let fleet_spec = FleetSpec::grid(9, 4, 7, mcu::LinkQuality::lossy(30_000));
    let mut fleet = build_fleet(&build, &fleet_spec);
    fleet.run(horizon_cycles(&build, &fleet_spec));
    let report = sink_report(&fleet);
    assert!(report.offered > 0, "no readings ever hit the air");
    assert!(report.heard > 0, "sink heard nothing: {report:?}");
    assert!(
        fleet.stats().dropped > 0,
        "lossy links dropped nothing: {:?}",
        fleet.stats()
    );
}
