//! FrontendArtifact cache correctness: a cached-then-cloned program must
//! build to a byte-identical image vs. a freshly compiled one, for both
//! a safe and an unsafe configuration, and repeated cache hits must not
//! drift (the middle-end mutates its copy, never the cached artifact).

use safe_tinyos::{BuildSession, Pipeline, Stage};
use safe_tinyos_suite as _;

#[test]
fn cached_artifact_builds_byte_identical_images() {
    let session = BuildSession::new();
    for name in ["BlinkTask_Mica2", "Surge_Mica2"] {
        let spec = tosapps::spec(name).unwrap();
        for config in [
            Pipeline::unsafe_baseline(),
            Pipeline::safe_flid_inline_cxprop(),
        ] {
            let fresh = BuildSession::uncached().build(&spec, &config).unwrap();
            let cached = session.build(&spec, &config).unwrap();
            let cached_again = session.build(&spec, &config).unwrap();
            assert_eq!(
                fresh.image,
                cached.image,
                "{name}/{}: cached artifact diverged from fresh compile",
                config.name()
            );
            assert_eq!(
                cached.image,
                cached_again.image,
                "{name}/{}: cache hit mutated the artifact",
                config.name()
            );
            assert_eq!(fresh.program, cached.program, "{name}/{}", config.name());
        }
    }
    // Two apps, four builds each: the frontend ran once per app.
    assert_eq!(session.frontend_compiles(), 2);
}

#[test]
fn frontend_artifact_is_shared_not_recompiled() {
    let session = BuildSession::new();
    let spec = tosapps::spec("BlinkTask_Mica2").unwrap();
    let a = session.frontend(&spec).unwrap();
    let b = session.frontend(&spec).unwrap();
    assert_eq!(session.frontend_compiles(), 1);
    // Both handles view the same lowered program.
    assert_eq!(a.program(), b.program());
    assert!(!a.output().components.is_empty());
}

#[test]
fn frontend_time_attributed_to_first_build_only() {
    let session = BuildSession::new();
    let spec = tosapps::spec("BlinkTask_Mica2").unwrap();
    let first = session.build(&spec, &Pipeline::unsafe_baseline()).unwrap();
    let second = session.build(&spec, &Pipeline::safe_flid()).unwrap();
    assert!(first.metrics.stage_times.get(Stage::Frontend) > std::time::Duration::ZERO);
    assert_eq!(
        second.metrics.stage_times.get(Stage::Frontend),
        std::time::Duration::ZERO
    );
    // Middle/back-end stages are timed on every build.
    assert!(second.metrics.stage_times.get(Stage::Link) > std::time::Duration::ZERO);
}
