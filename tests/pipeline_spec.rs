//! The pipeline-spec language: parse/Display round-trips, rejection of
//! malformed specs, preset coverage, and the composition property that
//! motivates the pass manager — *every* legal pass permutation builds a
//! Blink image that runs to `Sleeping` without faulting.

use std::sync::OnceLock;

use proptest::prelude::*;
use safe_tinyos::{simulate, BuildSession, Pipeline, PRESET_NAMES};
use safe_tinyos_suite as _;

#[test]
fn parse_display_round_trips() {
    // Left: accepted input. Right: its canonical rendering — which must
    // itself parse back to the same canonical form (idempotence).
    let cases = [
        ("cure", "cure(flid)"),
        ("cure(flid)", "cure(flid)"),
        (
            " cure ( terse , noopt ) | prune ",
            "cure(terse,noopt)|prune",
        ),
        (
            "cure(flid)|inline|cxprop(rounds=3)",
            "cure(flid)|inline|cxprop",
        ),
        (
            "cxprop(rounds=1,domain=constants)",
            "cxprop(domain=constants,rounds=1)",
        ),
        (
            "cxprop(inline,nodce,norefine)",
            "cxprop(inline,nodce,norefine)",
        ),
        ("cxprop(noharden)", "cxprop(noharden)"),
        ("cxprop(harden)", "cxprop"),
        ("races", "races"),
        ("races(fix)", "races(fix)"),
        ("stackbound", "stackbound"),
        ("stackbound(budget=2048)", "stackbound(budget=2048)"),
        (
            " cure ( flid ) | prune | stackbound ( budget = 512 ) ",
            "cure(flid)|prune|stackbound(budget=512)",
        ),
        (
            " cure ( flid ) | races ( fix ) | cxprop ( norefine ) ",
            "cure(flid)|races(fix)|cxprop(norefine)",
        ),
        // Stray whitespace of any flavor around tokens and `|` is
        // normalized away by the canonical rendering.
        ("\t cure ( flid )\n |\n\tprune ", "cure(flid)|prune"),
        ("inline(max-size=48)", "inline(max-size=48)"),
        ("inline(max-size=16)", "inline"),
        ("backend(opt)", "backend"),
        ("backend(noopt)", "backend(noopt)"),
        (
            "cure(verbose-rom,nolock,naive)",
            "cure(verbose-rom,nolock,naive)",
        ),
    ];
    for (input, canonical) in cases {
        let p = Pipeline::parse(input).unwrap_or_else(|e| panic!("{input}: {e}"));
        assert_eq!(p.to_string(), canonical, "canonicalizing `{input}`");
        assert_eq!(
            p.name(),
            canonical,
            "a parsed pipeline is named by its spec"
        );
        let again = Pipeline::parse(canonical).unwrap();
        assert_eq!(again.to_string(), canonical, "`{canonical}` must be stable");
    }
}

#[test]
fn malformed_specs_are_rejected_with_context() {
    let cases = [
        ("", "empty"),
        ("   ", "empty"),
        ("cure|", "empty pass"),
        ("frobnicate", "unknown pass"),
        ("cure(flid", "missing `)`"),
        ("cure(flid)x", "trailing input"),
        ("cure(shiny)", "unknown option"),
        ("inline(max-size=lots)", "needs a number"),
        ("cxprop(domain=octagons)", "unknown option"),
        ("prune(hard)", "takes no options"),
        ("backend(fast)", "unknown option"),
        // One option key per pass segment: repeats and contradictory
        // flag pairs are rejected, never silently last-wins.
        ("cxprop(rounds=2,rounds=3)", "duplicate option"),
        ("cxprop(dce,nodce)", "duplicate option"),
        (
            "cxprop(domain=constants,domain=intervals)",
            "duplicate option",
        ),
        ("cure(flid,terse)", "duplicate option"),
        ("cure(opt,noopt)", "duplicate option"),
        ("cure(flid,flid)", "duplicate option"),
        ("inline(max-size=4,max-size=8)", "duplicate option"),
        ("backend(opt,noopt)", "duplicate option"),
        ("races(hard)", "unknown option"),
        ("races(fix,fix)", "duplicate option"),
        ("stackbound(hard)", "unknown option"),
        ("stackbound(budget=lots)", "needs a number"),
        // A zero budget would certify nothing; the profile default is
        // spelled by omitting the option, never by `budget=0`.
        ("stackbound(budget=0)", "must be positive"),
        ("stackbound(budget=1,budget=2)", "duplicate option"),
    ];
    for (input, expect) in cases {
        let err = Pipeline::parse(input).expect_err(input).to_string();
        assert!(
            err.contains(expect),
            "`{input}` -> `{err}` (wanted `{expect}`)"
        );
    }
}

#[test]
fn every_preset_spec_round_trips() {
    for name in PRESET_NAMES {
        let preset = Pipeline::preset(name).unwrap();
        let spec = preset.spec();
        let reparsed = Pipeline::parse(&spec).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(reparsed.spec(), spec, "{name}");
        // A reparsed spec is named by the spec; the preset keeps its
        // figure label.
        assert_eq!(preset.name(), name);
    }
}

#[test]
fn pipeline_lists_accept_presets_specs_and_labels() {
    let list = safe_tinyos::parse_pipeline_list(
        "safe-flid; cure(terse)|prune ; mystack:cure(flid)|cxprop|prune",
    )
    .unwrap();
    assert_eq!(list.len(), 3);
    assert_eq!(list[0].name(), "safe-flid");
    assert_eq!(list[1].name(), "cure(terse)|prune");
    assert_eq!(list[2].name(), "mystack");
    assert_eq!(list[2].spec(), "cure(flid)|cxprop|prune");

    // The labeled form also relabels presets.
    let relabeled = safe_tinyos::parse_pipeline_list("baseline:safe-flid").unwrap();
    assert_eq!(relabeled[0].name(), "baseline");
    assert_eq!(relabeled[0].spec(), Pipeline::safe_flid().spec());

    assert!(safe_tinyos::parse_pipeline_list("").is_err());
    assert!(safe_tinyos::parse_pipeline_list("safe-flid;bogus").is_err());
}

#[test]
fn pipeline_lists_normalize_stray_whitespace() {
    // Tabs/newlines/spaces around `;`, `:`, and `|` parse to the same
    // canonical pipelines as the tight spelling — consistent with each
    // pipeline's Display round-trip. Empty entries are skipped.
    let tight = safe_tinyos::parse_pipeline_list("safe-flid;lbl:cure(flid)|prune").unwrap();
    let loose =
        safe_tinyos::parse_pipeline_list("\n safe-flid \t; ; lbl :\tcure( flid ) \n| prune ;")
            .unwrap();
    assert_eq!(tight.len(), loose.len());
    for (t, l) in tight.iter().zip(&loose) {
        assert_eq!(t.name(), l.name());
        assert_eq!(t.spec(), l.spec());
    }
}

// ---------------------------------------------------------------------
// The permutation property.
// ---------------------------------------------------------------------

/// One shared session: Blink's frontend compiles once for the whole
/// property run.
fn session() -> &'static BuildSession {
    static SESSION: OnceLock<BuildSession> = OnceLock::new();
    SESSION.get_or_init(BuildSession::new)
}

/// Decodes `mask` (subset of the four middle-end passes) and `perm`
/// (Lehmer code) into a pass order.
fn permuted_passes(mask: usize, perm: usize) -> Vec<&'static str> {
    let mut chosen: Vec<&'static str> = ["cure", "inline", "cxprop", "prune"]
        .into_iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, p)| p)
        .collect();
    let mut order = Vec::with_capacity(chosen.len());
    let mut code = perm;
    while !chosen.is_empty() {
        let n = chosen.len();
        order.push(chosen.remove(code % n));
        code /= n;
    }
    order
}

#[test]
fn mid_pipeline_backend_options_are_honored() {
    // A backend pass that is not last is invalidated (later passes
    // mutate the program), but the link-time re-prepare must still use
    // its options, not the defaults.
    let spec = tosapps::spec("BlinkTask_Mica2").unwrap();
    let mid = Pipeline::parse("cure(flid)|backend(noopt)|prune").unwrap();
    let last = Pipeline::parse("cure(flid)|prune|backend(noopt)").unwrap();
    let service = safe_tinyos::BuildService::new();
    let a = service.build(&spec, &mid).unwrap();
    let b = service.build(&spec, &last).unwrap();
    assert_eq!(a.image, b.image);
}

#[test]
fn permutation_decoder_is_exhaustive() {
    // All 24 orders of the full four-pass set must be reachable (the
    // mixed-radix decode must not skip any).
    let orders: std::collections::HashSet<Vec<&str>> =
        (0..24).map(|perm| permuted_passes(15, perm)).collect();
    assert_eq!(orders.len(), 24);
}

proptest! {
    /// Any subset of the middle-end passes, in any order, must yield a
    /// Blink image that runs to `Sleeping` without faulting — the pass
    /// manager admits no composition that breaks a correct program.
    #[test]
    fn any_pass_permutation_yields_a_working_blink(mask in 1usize..16, perm in 0usize..24) {
        let order = permuted_passes(mask, perm);
        let spec_string = order.join("|");
        let pipeline = Pipeline::parse(&spec_string).unwrap();
        let spec = tosapps::spec("BlinkTask_Mica2").unwrap();
        let build = session()
            .build(&spec, &pipeline)
            .unwrap_or_else(|e| panic!("{spec_string}: {e}"));
        let r = simulate(&build, &spec, 3);
        prop_assert!(
            r.state == mcu::RunState::Sleeping,
            "{}: state {:?}, fault {:?}", spec_string, r.state, r.fault
        );
        prop_assert!(r.led_transitions >= 4, "{}: leds {}", spec_string, r.led_transitions);
    }
}
