//! Property-based tests on the toolchain's core invariants.

use proptest::prelude::*;
use safe_tinyos_suite as _;
use tcil::ir::BinOp;
use tcil::types::IntKind;

// ---- interval-domain soundness: any concrete pair inside the operand
// intervals produces a result inside the abstract result interval ----

fn ival_strategy(kind: IntKind) -> impl Strategy<Value = (i64, i64)> {
    let (lo, hi) = (kind.min_value(), kind.max_value());
    (lo..=hi, lo..=hi).prop_map(|(a, b)| if a <= b { (a, b) } else { (b, a) })
}

proptest! {
    #[test]
    fn interval_binop_is_sound(
        a in ival_strategy(IntKind::U8),
        b in ival_strategy(IntKind::U8),
        x_frac in 0.0f64..1.0,
        y_frac in 0.0f64..1.0,
        op_idx in 0usize..8,
    ) {
        use cxprop::ival::Ival;
        let ops = [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div,
                   BinOp::Mod, BinOp::And, BinOp::Or, BinOp::Xor];
        let op = ops[op_idx];
        let kind = IntKind::U8;
        let ia = Ival::Range(a.0, a.1);
        let ib = Ival::Range(b.0, b.1);
        // Pick concrete values inside each interval.
        let x = a.0 + ((a.1 - a.0) as f64 * x_frac) as i64;
        let y = b.0 + ((b.1 - b.0) as f64 * y_frac) as i64;
        if let Some(concrete) = tcil::fold::eval_binop(op, x, y, kind) {
            let abst = Ival::binop(op, ia, ib, kind);
            let (lo, hi) = abst.bounds().expect("non-bottom");
            prop_assert!(
                (lo..=hi).contains(&concrete),
                "{op:?}: {x} op {y} = {concrete} outside [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn constant_folding_matches_machine(v1 in 0u8..=255, v2 in 1u8..=255, op_idx in 0usize..8) {
        // Differential test: fold::eval_binop must equal what the M16
        // actually computes for the same source expression.
        let ops = ["+", "-", "*", "/", "%", "&", "|", "^"];
        let op = ops[op_idx];
        let src = format!(
            "uint8_t out;
             uint8_t a = {v1};
             uint8_t b = {v2};
             void main() {{ out = (uint8_t)(a {op} b); }}"
        );
        let program = tcil::parse_and_lower(&src).unwrap();
        let image = backend::compile(&program, mcu::Profile::mica2(),
            &backend::BackendOptions { optimize: false }).unwrap();
        let mut m = mcu::Machine::new(&image);
        m.run(100_000);
        prop_assert_eq!(m.state, mcu::RunState::Halted);
        let got = m.ram_peek(image.find_global_addr("out").unwrap());
        let ir_ops = [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div,
                      BinOp::Mod, BinOp::And, BinOp::Or, BinOp::Xor];
        // Lowering promotes to 16-bit then truncates on store, like C.
        let folded = tcil::fold::eval_binop(ir_ops[op_idx], v1 as i64, v2 as i64, IntKind::U16)
            .map(|v| IntKind::U8.wrap(v));
        prop_assert_eq!(Some(got as i64), folded);
    }

    #[test]
    fn curing_never_changes_halting_results(
        vals in prop::collection::vec(0u8..=255, 4),
        idx in 0usize..4,
    ) {
        // A small family of pointer-using programs: cured and uncured
        // builds must compute identical results.
        let src = format!(
            "uint8_t buf[4] = {{{}, {}, {}, {}}};
             uint16_t out;
             uint16_t pick(uint8_t * p, uint8_t i) {{ return p[i]; }}
             void main() {{ out = pick(buf, {idx}); }}",
            vals[0], vals[1], vals[2], vals[3]
        );
        let run = |cure: bool| {
            let mut p = tcil::parse_and_lower(&src).unwrap();
            if cure {
                ccured::cure(&mut p, &ccured::CureOptions::default()).unwrap();
            }
            let img = backend::compile(&p, mcu::Profile::mica2(),
                &backend::BackendOptions::default()).unwrap();
            let mut m = mcu::Machine::new(&img);
            m.run(1_000_000);
            assert_eq!(m.state, mcu::RunState::Halted, "fault: {:?}", m.fault_message());
            m.ram_peek16(img.find_global_addr("out").unwrap())
        };
        prop_assert_eq!(run(false), run(true));
    }

    #[test]
    fn cxprop_preserves_observable_behaviour(
        n in 1u8..=16,
        stride in 1u8..=3,
    ) {
        // Loops with variable trip counts: optimization must not change
        // the LED output.
        let src = format!(
            "uint8_t acc;
             void main() {{
                 uint8_t i;
                 for (i = 0; i < {n}; i++) {{ acc = (uint8_t)(acc + {stride}); }}
                 __hw_write8(0xF000, (uint8_t)(acc & 7));
             }}"
        );
        let run = |optimize: bool| {
            let mut p = tcil::parse_and_lower(&src).unwrap();
            ccured::cure(&mut p, &ccured::CureOptions::default()).unwrap();
            if optimize {
                cxprop::optimize(&mut p, &cxprop::CxpropOptions::default());
            }
            let img = backend::compile(&p, mcu::Profile::mica2(),
                &backend::BackendOptions::default()).unwrap();
            let mut m = mcu::Machine::new(&img);
            m.run(1_000_000);
            assert_eq!(m.state, mcu::RunState::Halted);
            m.devices.leds.value
        };
        prop_assert_eq!(run(false), run(true));
    }

    #[test]
    fn generated_programs_identical_under_both_engines(seed in 1u64..5000) {
        // Engine identity over the difftest generator's program space:
        // for any generated program, the block-translation engine must
        // produce the same DiffObservation (state, fault category,
        // UART/radio streams, LED transitions, final RAM by name) AND
        // the same cycle/instruction accounting as the interpreter —
        // on the same build, so any mismatch is an engine bug, not a
        // pipeline difference.
        let program = safe_tinyos::difftest::generate_program(seed).unwrap();
        let preset = safe_tinyos::Pipeline::safe_flid_inline_cxprop();
        let build = preset.build(program, mcu::Profile::mica2()).unwrap();
        let run = |engine: mcu::Engine| {
            let mut m = mcu::Machine::new(&build.image);
            m.set_engine(engine);
            if engine == mcu::Engine::Bt {
                m.set_block_cache(build.block_cache());
            }
            m.run(200_000);
            let obs = safe_tinyos::difftest::DiffObservation::capture(&build, &m);
            (obs, m.cycles, m.awake_cycles, m.instr_count)
        };
        prop_assert_eq!(run(mcu::Engine::Interp), run(mcu::Engine::Bt));
    }

    #[test]
    fn stack_bound_dominates_observed_watermark(seed in 1u64..5000) {
        // Soundness of the static stack analyzer over the difftest
        // generator's program space: whatever call tree and interrupt
        // wiring the generated program ends up with, the certified
        // worst-case bound must dominate the deepest stack extent the
        // simulator ever observes. (The converse — tightness — is a
        // quality metric, reported by the `stack_analysis` harness, not
        // an invariant.)
        let program = safe_tinyos::difftest::generate_program(seed).unwrap();
        let pipeline = safe_tinyos::Pipeline::parse(
            "cure(flid)|inline|cxprop|prune|stackbound",
        ).unwrap();
        let build = pipeline.build(program, mcu::Profile::mica2()).unwrap();
        let stack = build.metrics.stack.expect("stackbound ran");
        let bound = stack.bound_bytes.expect("generated programs never recurse");
        let mut m = mcu::Machine::new(&build.image);
        m.run(200_000);
        prop_assert!(
            u32::from(m.stack_watermark()) <= bound,
            "seed {}: watermark {}B exceeds certified bound {}B (task {:?} + isr {:?})",
            seed, m.stack_watermark(), bound, stack.task_bytes, stack.isr_bytes
        );
    }

    #[test]
    fn frame_round_trips_through_radio_framing(payload in prop::collection::vec(any::<u8>(), 0..20)) {
        // The Rust frame builder and the in-language CRC must agree: a
        // packet injected into RfmToLeds-style parsing is never dropped.
        let pkt = tosapps::AmPacket::broadcast(4, payload.clone());
        let frame = pkt.frame_bytes();
        prop_assert_eq!(frame.len(), payload.len() + 8);
        // Recompute the CRC over header+payload and compare the trailer.
        let mut c = 0u16;
        for &b in &frame[1..frame.len() - 2] {
            c = tosapps::context::crc_byte(c, b);
        }
        prop_assert_eq!(frame[frame.len() - 2], c as u8);
        prop_assert_eq!(frame[frame.len() - 1], (c >> 8) as u8);
    }

    #[test]
    fn link_loss_seeds_are_skew_free(
        seed in any::<u64>(),
        src in 0u32..1024,
        dst in 0u32..1024,
        index in 0u64..100_000,
        loss_ppm in 0u32..=1_000_000,
        dup_a in 0u32..=1_000_000,
        dup_b in 0u32..=1_000_000,
        reorder_a in 0u32..=1_000_000,
        reorder_b in 0u32..=1_000_000,
    ) {
        // The fleet's per-link RNG is a pure function of its key, and
        // the loss decision for a given (seed, src, dst, index) must not
        // move when the duplication or reordering knobs change — loss
        // patterns stay comparable across experiments that vary the
        // other quality dimensions.
        let qa = mcu::LinkQuality { loss_ppm, dup_ppm: dup_a, reorder_ppm: reorder_a };
        let qb = mcu::LinkQuality { loss_ppm, dup_ppm: dup_b, reorder_ppm: reorder_b };
        let a = mcu::fleet::link_decision(seed, src, dst, index, &qa);
        let b = mcu::fleet::link_decision(seed, src, dst, index, &qb);
        // Loss bit must not skew when dup/reorder knobs change.
        prop_assert_eq!(a.drop, b.drop);
        // Pure: same key, same quality, same outcome.
        prop_assert_eq!(a, mcu::fleet::link_decision(seed, src, dst, index, &qa));
        // Directionality: the link is directed, so the reverse link
        // draws from an independent stream (equal outcomes are allowed,
        // but the decision must again be deterministic).
        let r = mcu::fleet::link_decision(seed, dst, src, index, &qb);
        prop_assert_eq!(r, mcu::fleet::link_decision(seed, dst, src, index, &qb));
        // Degenerate knobs behave: certain loss always drops, zero
        // never does.
        prop_assert!(mcu::fleet::link_decision(seed, src, dst, index,
            &mcu::LinkQuality { loss_ppm: 1_000_000, dup_ppm: dup_a, reorder_ppm: reorder_a }).drop);
        prop_assert!(!mcu::fleet::link_decision(seed, src, dst, index,
            &mcu::LinkQuality::LOSSLESS).drop);
    }
}
