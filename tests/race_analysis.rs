//! The whole-program race analyzer, end to end: the frontend's
//! concurrency report and cXprop's reachability refinement must agree
//! (refinement only clears racy globals, never invents them), the
//! `races` pass must report per-site diagnostics on every benchmark app,
//! and the `races(fix)` auto-hardener must reach its zero-diagnostic
//! fixpoint on arbitrary generated programs, not just the app suite.

use std::collections::HashSet;

use proptest::prelude::*;
use safe_tinyos::{difftest, BuildSession, Pipeline};
use safe_tinyos_suite as _;

#[test]
fn refinement_only_clears_racy_globals_never_adds() {
    // The frontend's conservative non-atomic variable report is the
    // contract CCured locks against; cXprop's per-access refinement may
    // prove some of those globals safe (read-only sharing) but must
    // never flag a global the frontend considered clean.
    let session = BuildSession::new();
    for app in tosapps::mica2_apps() {
        let spec = tosapps::spec(app).unwrap();
        let artifact = session.frontend(&spec).unwrap();
        let coarse: HashSet<String> = artifact.output().report.racy.iter().cloned().collect();
        let mut program = artifact.program();
        let refined = cxprop::races::refine(&mut program);
        for name in &refined.racy {
            assert!(
                coarse.contains(name),
                "{app}: refinement flagged `{name}`, which the frontend report cleared"
            );
        }
        for name in &refined.cleared {
            assert!(
                coarse.contains(name),
                "{app}: refinement claims to clear `{name}`, which was never flagged"
            );
        }
    }
}

#[test]
fn races_pass_reports_per_site_diagnostics_on_every_app() {
    let session = BuildSession::new();
    let analyzer = Pipeline::parse("cure(flid)|races|cxprop|prune").unwrap();
    for app in tosapps::mica2_apps() {
        let spec = tosapps::spec(app).unwrap();
        let build = session.build(&spec, &analyzer).unwrap();
        let diags = &build.metrics.diagnostics;
        assert!(!diags.is_empty(), "{app}: no per-site diagnostics");
        for d in diags {
            assert!(
                matches!(d.code.as_str(), "R001" | "R002" | "R003"),
                "{app}: unknown code {}",
                d.code
            );
            // FLID-style site labels: `function:site-index`.
            let (func, site) = d
                .site
                .rsplit_once(':')
                .unwrap_or_else(|| panic!("{app}: malformed site label `{}`", d.site));
            assert!(!func.is_empty(), "{app}: empty function in `{}`", d.site);
            assert!(
                site.parse::<u32>().is_ok(),
                "{app}: non-numeric site in `{}`",
                d.site
            );
        }
        let stats = build.metrics.races.expect("races pass ran");
        assert_eq!(
            stats.sections_added, 0,
            "{app}: analysis-only pass rewrote code"
        );
    }
}

#[test]
fn generated_isr_programs_exercise_the_fault_codes() {
    // The difftest generator shares named globals between ISR bodies and
    // task code precisely so generated programs have real race sites —
    // a healthy sample must classify some.
    let mut with_sites = 0;
    for seed in 1..=20 {
        let mut program = difftest::generate_program(seed).unwrap();
        if !cxprop::race_sites::classify(&mut program).sites.is_empty() {
            with_sites += 1;
        }
    }
    assert!(
        with_sites >= 5,
        "only {with_sites}/20 generated programs had classifiable race sites"
    );
}

proptest! {
    #[test]
    fn races_fix_reaches_zero_diagnostic_fixpoint(seed in 1u64..5000) {
        let mut program = difftest::generate_program(seed).unwrap();
        let stats = cxprop::race_sites::harden(&mut program);
        prop_assert!(
            stats.residual_sites == 0,
            "seed {}: hardening left {} site(s) standing", seed, stats.residual_sites
        );
        let findings = cxprop::race_sites::classify(&mut program);
        prop_assert!(
            findings.sites.is_empty(),
            "seed {}: post-fix classification found {:?}", seed, findings.sites
        );
    }
}
