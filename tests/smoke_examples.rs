//! Workspace smoke test: exercises the core path of each of the four
//! `examples/` binaries in-process and asserts it completes without
//! faulting, so a regression in any example's flow fails `cargo test`
//! rather than only `cargo run --example`.

use backend::BackendOptions;
use ccured::{cure, CureOptions};
use cxprop::{CxpropOptions, InlineOptions};
use mcu::net::Network;
use mcu::{Machine, Profile, RunState};
use safe_tinyos::{simulate, BuildSession, Pipeline};
use safe_tinyos_suite as _;

/// `examples/quickstart.rs`: Blink through three configurations, with
/// metrics and a FLID table on the safe builds.
#[test]
fn quickstart_core_path() {
    let spec = tosapps::spec("BlinkTask_Mica2").expect("known app");
    let session = BuildSession::new();
    for config in [
        Pipeline::unsafe_baseline(),
        Pipeline::safe_flid(),
        Pipeline::safe_flid_inline_cxprop(),
    ] {
        let build = session.build(&spec, &config).expect("build");
        let run = simulate(&build, &spec, 5);
        assert_eq!(
            run.state,
            RunState::Sleeping,
            "{}: fault {:?}",
            config.name(),
            run.fault
        );
        assert!(
            run.led_transitions >= 4,
            "{}: leds {}",
            config.name(),
            run.led_transitions
        );
    }
    let build = session.build(&spec, &Pipeline::safe_flid()).expect("build");
    assert!(
        !build.image.flid_table.is_empty(),
        "safe build carries a FLID table"
    );
    assert_eq!(
        session.frontend_compiles(),
        1,
        "four builds share one frontend artifact"
    );
}

/// `examples/safety_violation.rs`: the same buggy program silently
/// corrupts memory unsafely and traps with a FLID safely.
#[test]
fn safety_violation_core_path() {
    const BUGGY: &str = "
        uint8_t samples[8];
        uint8_t radio_power = 3;
        void record(uint8_t * buf, uint8_t n) {
            uint8_t i;
            for (i = 0; i < n; i++) { buf[i] = (uint8_t)(i + 0xA0); }
        }
        void main() { record(samples, 40); }
    ";
    let program = tcil::parse_and_lower(BUGGY).expect("parse");
    let image =
        backend::compile(&program, Profile::mica2(), &BackendOptions::default()).expect("compile");
    let mut m = Machine::new(&image);
    m.run(1_000_000);
    assert_eq!(m.state, RunState::Halted, "unsafe build runs to completion");
    let power = image.find_global_addr("radio_power").expect("symbol");
    assert_ne!(
        m.ram_peek(power),
        3,
        "unsafe build silently corrupts the neighbour"
    );

    let mut program = tcil::parse_and_lower(BUGGY).expect("parse");
    cure(&mut program, &CureOptions::default()).expect("cure");
    let image =
        backend::compile(&program, Profile::mica2(), &BackendOptions::default()).expect("compile");
    let mut m = Machine::new(&image);
    m.run(1_000_000);
    assert_eq!(m.state, RunState::Faulted, "safe build traps");
    assert!(m.fault_message().expect("fault message").contains("FLID"));
    let power = image.find_global_addr("radio_power").expect("symbol");
    assert_eq!(m.ram_peek(power), 3, "safe build prevents the corruption");
}

/// `examples/surge_network.rs`: a three-node Surge network forms a
/// routing tree from injected beacons and carries traffic.
#[test]
fn surge_network_core_path() {
    let spec = tosapps::spec("Surge_Mica2").expect("known app");
    let build = BuildSession::new()
        .build(&spec, &Pipeline::safe_flid_inline_cxprop())
        .expect("build");
    let mut nodes = Vec::new();
    for i in 0..3 {
        let mut m = Machine::new(&build.image);
        m.set_waveform(mcu::devices::Waveform::Noise {
            seed: 0x1000 + i,
            min: 200,
            max: 900,
        });
        nodes.push(m);
    }
    let beacon = tosapps::AmPacket::broadcast(18, vec![0, 0, 0]);
    for k in 0..4 {
        nodes[0].inject_rx_bytes(500_000 + k * 8_000_000, &beacon.frame_bytes());
    }
    let mut net = Network::new(nodes);
    net.run(5 * 4_000_000);
    for (i, n) in net.nodes.iter().enumerate() {
        assert!(
            matches!(n.state, RunState::Sleeping | RunState::Running),
            "node {i}: {:?} (fault {:?})",
            n.state,
            n.fault_message()
        );
    }
    let total_tx: usize = net.nodes.iter().map(|n| n.radio_out.len()).sum();
    assert!(total_tx > 0, "the network carries traffic");
}

/// `examples/optimization_pipeline.rs`: the stage-by-stage walk keeps
/// the program compilable at every stage and ends with fewer checks
/// than CCured inserted.
#[test]
fn optimization_pipeline_core_path() {
    let spec = tosapps::spec("Oscilloscope_Mica2").expect("known app");
    let session = BuildSession::new();
    let mut program = session.frontend(&spec).expect("nesc").program();
    let compiles = |p: &tcil::Program| {
        backend::compile(p, Profile::mica2(), &BackendOptions::default()).expect("compile")
    };
    compiles(&program);

    cure(
        &mut program,
        &CureOptions {
            local_optimize: false,
            ..Default::default()
        },
    )
    .expect("cure");
    let inserted = program.count_checks();
    assert!(inserted > 0, "CCured inserts checks");
    compiles(&program);

    ccured::optimize::optimize_checks(&mut program);
    compiles(&program);

    let inlined = cxprop::inline::run(&mut program, &InlineOptions::default());
    assert!(inlined > 0, "inliner expands call sites");
    compiles(&program);

    cxprop::optimize(
        &mut program,
        &CxpropOptions {
            inline: false,
            ..Default::default()
        },
    );
    ccured::errmsg::prune_unused_messages(&mut program);
    let image = compiles(&program);
    assert!(
        image.surviving_checks() < inserted,
        "cXprop removes checks: {} -> {}",
        inserted,
        image.surviving_checks()
    );
}
