//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no network access, so this crate implements
//! the (small) API subset the workspace's benchmarks use: [`Criterion`],
//! [`Bencher::iter`], [`criterion_group!`], [`criterion_main!`], and
//! [`black_box`]. Timing methodology is simple wall-clock sampling —
//! good enough for the relative, trend-over-PRs numbers the repo tracks.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement time per benchmark.
const MEASURE_TIME: Duration = Duration::from_millis(300);

/// The benchmark driver. One instance is shared by a `criterion_group!`.
#[derive(Default)]
pub struct Criterion {
    results: Vec<(String, f64)>,
}

impl Criterion {
    /// Runs `f` repeatedly and reports mean nanoseconds per iteration.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        // Warm-up round (also sizes one iteration).
        f(&mut b);
        let once = if b.iters > 0 {
            b.elapsed / b.iters as u32
        } else {
            Duration::ZERO
        };
        let budget = MEASURE_TIME.saturating_sub(b.elapsed);
        let rounds = if once.is_zero() {
            8
        } else {
            (budget.as_nanos() / once.as_nanos().max(1)).clamp(1, 1000) as usize
        };
        for _ in 0..rounds {
            f(&mut b);
        }
        let ns = b.elapsed.as_nanos() as f64 / b.iters.max(1) as f64;
        println!("{id:<32} {:>14.1} ns/iter ({} iters)", ns, b.iters);
        self.results.push((id.to_string(), ns));
        self
    }

    /// All `(id, ns_per_iter)` results collected so far.
    pub fn results(&self) -> &[(String, f64)] {
        &self.results
    }
}

/// Passed to the closure given to [`Criterion::bench_function`].
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times one call of `f`, accumulating into the bench totals.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

/// Declares a function `$name` that runs each `$target(&mut Criterion)`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running each group function.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
