//! Offline stand-in for the `proptest` property-testing framework.
//!
//! The build environment has no network access, so this crate implements
//! the API subset the workspace's property tests use: the [`Strategy`]
//! trait (ranges, tuples, `prop_map`, `any`, `prop::collection::vec`),
//! the [`proptest!`] macro, and `prop_assert!` / `prop_assert_eq!`.
//!
//! Cases are generated from a deterministic per-test RNG (seeded from the
//! test name) so failures reproduce across runs. There is no shrinking;
//! the generated inputs are printed on failure instead. The case count
//! defaults to 64 and can be overridden with `PROPTEST_CASES`.

use std::fmt;

pub mod strategy;

pub use strategy::{Any, Map, Strategy, VecStrategy};

/// Number of cases each property runs (override with `PROPTEST_CASES`).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

/// A failed property case.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic xorshift64* generator, seeded per test.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test name (FNV-1a) so each property is independent
    /// but reproducible.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h | 1 }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform value in `[0, bound)` (bound > 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The `prop::` module path used by `prop::collection::vec` and friends.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::vec;
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{TestCaseError, TestRng};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                for case in 0..$crate::cases() {
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)*
                    let result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!("property {} failed at case {}: {}", stringify!($name), case, e);
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports through the proptest machinery.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that reports through the proptest machinery.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r,
            )));
        }
    }};
}

/// `assert_ne!` that reports through the proptest machinery.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l,
            )));
        }
    }};
}
