//! The [`Strategy`] trait and the concrete strategies the workspace uses:
//! numeric ranges, tuples, mapped strategies, `any::<T>()`, and
//! fixed/range-sized vectors.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::TestRng;

/// A source of generated values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                (self.start as i128 + rng.below(span as u64) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u128;
                // Full-width ranges (e.g. i64::MIN..=i64::MAX) would
                // overflow u64; fall back to a raw draw.
                if span == 0 || span > u64::MAX as u128 {
                    rng.next_u64() as $t
                } else {
                    (lo + rng.below(span as u64) as i128) as $t
                }
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// Types with a canonical "whole domain" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over a type's whole domain: `any::<u8>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Something that can pick a vector length: a fixed `usize` or a range.
pub trait SizeRange {
    /// Draws a length.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        Strategy::generate(self, rng)
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        Strategy::generate(self, rng)
    }
}

/// `prop::collection::vec(element, size)`.
pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
    VecStrategy { element, size }
}

/// Strategy returned by [`vec()`].
pub struct VecStrategy<S, Z> {
    element: S,
    size: Z,
}

impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
